//! The threaded executor.
//!
//! ## Zero-copy dataflow
//!
//! All dataflow routing is resolved to dense integer indices before any
//! worker starts: a [`Router`] maps every `(task, input var)` pair to
//! either a producer's output port `(task index, output index)` or a
//! densified external-input slot, and every design output port to a
//! `(task, output index)` pair. At run time workers move [`Value`]s by
//! `clone()` — which, for arrays, is an `Arc` refcount bump (see
//! `banger_calc::value`) — through an indexed slab store
//! (`Vec<Option<Arc<Vec<Value>>>>`), never through name-keyed maps.
//! Fanning one array out to N consumers is N refcount bumps; the buffer
//! is copied only if a consumer actually writes to it (copy-on-write).
//! Each worker thread keeps one [`Vm`] frame and one input frame
//! (`Vec<Value>`) across all the task copies it executes, so the steady
//! state allocates nothing per task beyond what the programs themselves
//! compute. DESIGN.md §10 documents the routing tables and the CoW
//! contract.
//!
//! ## Work stealing
//!
//! Greedy mode has no coordinator thread and no channels. Each worker
//! owns a Chase–Lev deque ([`crossbeam::deque`]); completing a task
//! decrements successor in-degrees (atomics) and publishes newly ready
//! tasks straight into the completing worker's own deque, where idle
//! workers steal them FIFO. Ready tasks whose static weight falls below
//! [`ExecOptions::inline_below`] skip the deque entirely: they go onto
//! the worker's private stack and run on the same thread with no
//! publication and no wakeup — the small-grain regime the paper's
//! large-grain model degrades into pays no coordination at all. Workers
//! with nothing to run or steal park on a condvar behind a Dekker-style
//! `waiting` flag, so publishers pay a fence plus one relaxed load (no
//! syscall) when nobody sleeps. The same machinery is reused across
//! firings by [`crate::session::Session`], which keeps the threads
//! parked between runs. DESIGN.md §12 documents the protocol.
//!
//! ## Tracing and error paths
//!
//! With [`ExecOptions::trace`] set, every mode records
//! [`TraceEvent`]s — task start/finish with CoW copy counts and
//! per-input byte volumes, queue/dependency waits, per-worker
//! steal/inline counters, and error events — into per-worker buffers
//! merged into [`ExecReport::trace`]. With the flag off the hot path
//! does no trace work at all. Task bodies run under `catch_unwind` in
//! every mode, so a panicking body surfaces as
//! [`ExecError::WorkerPanic`] naming the task instead of killing the
//! worker silently; a worker thread lost with work in flight poisons
//! the run and surfaces as [`ExecError::WorkerLost`] rather than
//! hanging the barrier. DESIGN.md §11 documents the event model and
//! the overhead contract.

use banger_calc::compile::CompiledProgram;
use banger_calc::value::cow;
use banger_calc::vm::Vm;
use banger_calc::{interp, InterpConfig, Program, ProgramLibrary, RunError, Value};
use banger_sched::Schedule;
use banger_taskgraph::hierarchy::Flattened;
use banger_taskgraph::{TaskGraph, TaskId};
use banger_trace::{Trace, TraceEvent};
use crossbeam::deque::{self, Steal};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default [`ExecOptions::inline_below`]: ready tasks whose static
/// weight (ops estimate) is under this run on the publishing worker's
/// private stack instead of a stealable deque. Weights are in
/// interpreter ops (see DESIGN.md §9's ops-as-weight invariant), so
/// this says "don't pay cross-thread handoff for under ~1k ops".
pub const DEFAULT_INLINE_BELOW: f64 = 1024.0;

/// How tasks are dispatched to workers.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecMode {
    /// Work-conserving pool with `workers` threads (0 = one per available
    /// core).
    Greedy {
        /// Thread count; 0 picks `std::thread::available_parallelism`.
        workers: usize,
    },
    /// Follow a schedule: worker *i* executes processor *i*'s placements
    /// in predicted start order (duplicated copies included). Shared by
    /// `Arc` so repeated executions of one schedule don't clone the
    /// placement lists.
    Pinned(Arc<Schedule>),
}

impl ExecMode {
    /// Pinned mode from an owned schedule.
    pub fn pinned(schedule: Schedule) -> Self {
        ExecMode::Pinned(Arc::new(schedule))
    }
}

/// Executor options.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOptions {
    /// Dispatch mode.
    pub mode: ExecMode,
    /// Interpreter configuration for each task body.
    pub interp: InterpConfig,
    /// Record a [`Trace`] of the execution into [`ExecReport::trace`].
    /// Off by default; the untraced hot path performs no trace work.
    pub trace: bool,
    /// Work-stealing greedy mode: ready tasks with static weight
    /// strictly below this run on the publishing worker's private
    /// stack — no deque publication, no wakeup, no steal. `0.0`
    /// disables inlining (every ready task is stealable), which the
    /// differential suites use to force the cross-thread path.
    pub inline_below: f64,
    /// Fault injection for error-path tests: panic inside the body of
    /// the task with this exact name. Not part of the public contract.
    #[doc(hidden)]
    pub inject_panic: Option<String>,
    /// Fault injection for error-path tests: the worker that dequeues
    /// the task with this exact name dies (its thread unwinds with the
    /// task unfinished), exercising the `WorkerLost` path. Not part of
    /// the public contract.
    #[doc(hidden)]
    pub inject_worker_death: Option<String>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            mode: ExecMode::Greedy { workers: 0 },
            interp: InterpConfig::default(),
            trace: false,
            inline_below: DEFAULT_INLINE_BELOW,
            inject_panic: None,
            inject_worker_death: None,
        }
    }
}

/// Timing record of one executed task copy.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRun {
    /// The task.
    pub task: TaskId,
    /// Worker index that ran it.
    pub worker: usize,
    /// Start offset from execution begin.
    pub start: Duration,
    /// Finish offset from execution begin.
    pub finish: Duration,
    /// Interpreter operation count (a measured weight).
    pub ops: u64,
}

/// The result of executing a design.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Values of the design's external output ports.
    pub outputs: BTreeMap<String, Value>,
    /// Per-task-copy timing, in completion order.
    pub runs: Vec<TaskRun>,
    /// Total wall-clock time.
    pub wall: Duration,
    /// `print` lines from all tasks, tagged with the producing task.
    pub prints: Vec<(TaskId, String)>,
    /// The recorded event stream, present iff [`ExecOptions::trace`] was
    /// set.
    pub trace: Option<Trace>,
}

impl ExecReport {
    /// Total interpreter operations across every task run — the "ops"
    /// half of an execution's observable outcome. Graph rewrites that
    /// claim semantic transparency (see `banger-opt`) must leave this
    /// exactly unchanged alongside [`ExecReport::outputs`].
    pub fn total_ops(&self) -> u64 {
        self.runs.iter().map(|r| r.ops).sum()
    }

    /// Measured operation count per task (max over copies), usable as
    /// calibrated weights for re-scheduling.
    pub fn measured_weights(&self, n_tasks: usize) -> Vec<f64> {
        let mut w = vec![0.0f64; n_tasks];
        for r in &self.runs {
            w[r.task.index()] = w[r.task.index()].max(r.ops as f64);
        }
        w
    }
}

/// Executor failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A task node carries no program name.
    NoProgram(String),
    /// A program name is not in the library.
    UnknownProgram(String),
    /// A program input has no producing arc and no external input.
    UnboundInput {
        /// Task name.
        task: String,
        /// The unbound variable.
        var: String,
    },
    /// A producing task does not declare the output an arc carries.
    MissingArcValue {
        /// Producer task name.
        producer: String,
        /// Arc label / variable.
        var: String,
    },
    /// The interpreter failed inside a task.
    Run {
        /// Task name.
        task: String,
        /// The underlying error.
        error: RunError,
    },
    /// The graph is cyclic.
    Cyclic,
    /// Pinned mode: the schedule does not cover the graph.
    BadSchedule(String),
    /// A task body panicked; caught and attributed instead of killing
    /// the worker thread silently.
    WorkerPanic {
        /// Task whose body panicked.
        task: String,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A worker thread was lost with tasks still outstanding (its
    /// dequeued work never completed), so the run can no longer drain.
    WorkerLost(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NoProgram(t) => write!(f, "task {t:?} has no attached program"),
            ExecError::UnknownProgram(p) => write!(f, "program {p:?} not found in library"),
            ExecError::UnboundInput { task, var } => {
                write!(
                    f,
                    "task {task:?}: input {var:?} has no producer and no external value"
                )
            }
            ExecError::MissingArcValue { producer, var } => {
                write!(
                    f,
                    "task {producer:?} did not produce output {var:?} required by an arc"
                )
            }
            ExecError::Run { task, error } => write!(f, "task {task:?} failed: {error}"),
            ExecError::Cyclic => write!(f, "design graph is cyclic"),
            ExecError::BadSchedule(m) => write!(f, "bad schedule for pinned execution: {m}"),
            ExecError::WorkerPanic { task, message } => {
                write!(f, "task {task:?} panicked: {message}")
            }
            ExecError::WorkerLost(m) => write!(f, "executor workers lost: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Published outputs of one task: values in the producing program's
/// `output_slots` (declaration) order, shared between workers by `Arc`.
type TaskOutputs = Arc<Vec<Value>>;

/// Shared results store: an indexed slab of task outputs plus a condvar
/// for pinned-mode waiting. No string keys anywhere — consumers address
/// values as `outputs[task][output index]` via the [`Router`].
pub(crate) struct Store {
    /// `outputs[t]` is `Some` once any copy of `t` completed.
    pub(crate) outputs: Mutex<Vec<Option<TaskOutputs>>>,
    ready: Condvar,
    /// Threads currently blocked in [`Store::wait_for`]. Publishing only
    /// notifies the condvar when this is non-zero: only pinned mode ever
    /// waits, and `std`'s futex condvar pays a `FUTEX_WAKE` syscall per
    /// notify even with no waiters — a measurable per-task tax otherwise.
    waiters: AtomicUsize,
    pub(crate) poisoned: AtomicBool,
}

impl Store {
    pub(crate) fn new(n: usize) -> Self {
        Store {
            outputs: Mutex::new(vec![None; n]),
            ready: Condvar::new(),
            waiters: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    fn publish(&self, t: TaskId, vals: Vec<Value>) {
        let mut lock = self.outputs.lock();
        if lock[t.index()].is_none() {
            lock[t.index()] = Some(Arc::new(vals));
        }
        // `waiters` is only ever incremented under the lock we hold, so a
        // zero read here cannot race with a waiter about to block.
        if self.waiters.load(Ordering::Relaxed) > 0 {
            self.ready.notify_all();
        }
    }

    pub(crate) fn get(&self, t: TaskId) -> Option<TaskOutputs> {
        self.outputs.lock()[t.index()].clone()
    }

    /// Rearms the slab for another firing of the same graph (session
    /// reuse): drops every published output, un-poisons. The backing
    /// `Vec` keeps its allocation.
    pub(crate) fn reset(&self) {
        let mut lock = self.outputs.lock();
        for slot in lock.iter_mut() {
            *slot = None;
        }
        self.poisoned.store(false, Ordering::SeqCst);
    }

    /// Blocks until every task in `tasks` has published (pinned mode).
    /// Returns false if execution was poisoned meanwhile.
    fn wait_for(&self, tasks: &[TaskId]) -> bool {
        let mut lock = self.outputs.lock();
        loop {
            if self.poisoned.load(Ordering::SeqCst) {
                return false;
            }
            if tasks.iter().all(|t| lock[t.index()].is_some()) {
                return true;
            }
            // Incremented under the lock (see `publish`), decremented after
            // waking so a publisher that saw us cannot be missed.
            self.waiters.fetch_add(1, Ordering::Relaxed);
            self.ready.wait(&mut lock);
            self.waiters.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }
}

/// Where one task input comes from, resolved once at routing time.
#[derive(Debug, Clone, Copy)]
enum Feed {
    /// Output port `out` of task `src` (an index into its published
    /// output vector).
    Arc { src: TaskId, out: u32 },
    /// Densified external-input slot `idx` (bound per firing by
    /// [`Router::bind`]).
    External(u32),
}

/// Everything one task needs to run, with all names resolved away.
/// Owns `Arc` handles into the library (no borrows), so a [`Router`]
/// can outlive the `execute` call that built it — the persistent
/// [`crate::session::Session`] keeps one across thousands of firings.
struct TaskRoute {
    /// Pre-resolved bytecode (shared with the library; workers bump the
    /// refcount, never re-compile).
    compiled: Arc<CompiledProgram>,
    /// The AST, for reference-interpreter runs.
    prog: Arc<Program>,
    /// One feed per program input, in `input_slots` (declaration) order —
    /// the positional contract of [`Vm::run_dense`].
    feeds: Vec<Feed>,
}

/// Dense routing tables for a design: built once, read by every worker
/// across any number of firings. Resolving `(task, var)` string pairs
/// happens here and only here; structural failures (`NoProgram`,
/// `MissingArcValue`) surface at build time, and per-firing value
/// failures (`UnboundInput`) at [`Router::bind`] time — both before
/// any task runs.
pub(crate) struct Router {
    routes: Vec<TaskRoute>,
    /// External-input slots in first-reference order: `(variable, name
    /// of the first task that reads it)` — the task named by an
    /// `UnboundInput` error when a firing omits the variable.
    ext_slots: Vec<(String, String)>,
    /// Slot indices sorted by variable name — the merge-join order used
    /// by [`Router::bind`].
    ext_sorted: Vec<u32>,
    /// Design output ports: `(port var, producing task, output index)`.
    out_ports: Vec<(String, TaskId, usize)>,
}

impl Router {
    pub(crate) fn build(design: &Flattened, lib: &ProgramLibrary) -> Result<Self, ExecError> {
        let g = &design.graph;
        // Pass 1: every task resolves to a program (fail fast, not
        // mid-run).
        let mut compiled: Vec<Arc<CompiledProgram>> = Vec::with_capacity(g.task_count());
        let mut progs: Vec<Arc<Program>> = Vec::with_capacity(g.task_count());
        for t in g.task_ids() {
            let task = g.task(t);
            let name = task
                .program
                .as_deref()
                .ok_or_else(|| ExecError::NoProgram(task.name.clone()))?;
            let prog = lib
                .get_shared(name)
                .ok_or_else(|| ExecError::UnknownProgram(name.to_string()))?;
            progs.push(prog);
            compiled.push(lib.get_compiled(name).expect("get_shared() succeeded"));
        }

        // Pass 2: resolve every input binding to a feed.
        let mut ext_slots: Vec<(String, String)> = Vec::new();
        let mut ext_index: BTreeMap<String, u32> = BTreeMap::new();
        let mut routes: Vec<TaskRoute> = Vec::with_capacity(g.task_count());
        for t in g.task_ids() {
            let c = Arc::clone(&compiled[t.index()]);
            let mut feeds = Vec::with_capacity(c.input_slots.len());
            'vars: for var in c.input_names() {
                // An arc labelled with the variable name supplies it...
                for &e in g.in_edges(t) {
                    let edge = g.edge(e);
                    if edge.label == var {
                        let out =
                            compiled[edge.src.index()]
                                .output_index(var)
                                .ok_or_else(|| ExecError::MissingArcValue {
                                    producer: g.task(edge.src).name.clone(),
                                    var: var.to_string(),
                                })?;
                        feeds.push(Feed::Arc {
                            src: edge.src,
                            out: out as u32,
                        });
                        continue 'vars;
                    }
                }
                // ... otherwise it is an external-input slot, valued per
                // firing by `bind`.
                let idx = *ext_index.entry(var.to_string()).or_insert_with(|| {
                    ext_slots.push((var.to_string(), g.task(t).name.clone()));
                    (ext_slots.len() - 1) as u32
                });
                feeds.push(Feed::External(idx));
            }
            routes.push(TaskRoute {
                compiled: c,
                prog: Arc::clone(&progs[t.index()]),
                feeds,
            });
        }

        // Design output ports resolve the same way.
        let mut out_ports = Vec::with_capacity(design.outputs.len());
        for port in &design.outputs {
            // The port's producing tasks all emit the variable; take the
            // first.
            let t = port.tasks[0];
            let out = compiled[t.index()].output_index(&port.var).ok_or_else(|| {
                ExecError::MissingArcValue {
                    producer: g.task(t).name.clone(),
                    var: port.var.clone(),
                }
            })?;
            out_ports.push((port.var.clone(), t, out));
        }

        let mut ext_sorted: Vec<u32> = (0..ext_slots.len() as u32).collect();
        ext_sorted.sort_by(|&x, &y| ext_slots[x as usize].0.cmp(&ext_slots[y as usize].0));

        Ok(Router {
            routes,
            ext_slots,
            ext_sorted,
            out_ports,
        })
    }

    /// Values for every external-input slot, in slot order, from one
    /// firing's `external` map. A missing variable is `UnboundInput`
    /// naming the first task that reads it — the same attribution the
    /// build-time check used to give.
    ///
    /// This runs on every `Session` firing, so instead of one `BTreeMap`
    /// lookup per slot it merge-joins the slots (pre-sorted by variable
    /// at build time) against the map's ordered iterator — one linear
    /// walk over both. Extra keys in `external` are skipped; a missing
    /// slot bails to a cold path that rescans in slot order so the
    /// reported `(task, var)` is identical to the per-slot version's.
    pub(crate) fn bind(&self, external: &BTreeMap<String, Value>) -> Result<Vec<Value>, ExecError> {
        let mut vals = vec![Value::Num(0.0); self.ext_slots.len()];
        let mut it = external.iter();
        let mut cur = it.next();
        for &si in &self.ext_sorted {
            let var = self.ext_slots[si as usize].0.as_str();
            loop {
                match cur {
                    Some((k, v)) => match k.as_str().cmp(var) {
                        std::cmp::Ordering::Less => cur = it.next(),
                        std::cmp::Ordering::Equal => {
                            vals[si as usize] = v.clone();
                            break;
                        }
                        std::cmp::Ordering::Greater => return Err(self.unbound(external)),
                    },
                    None => return Err(self.unbound(external)),
                }
            }
        }
        Ok(vals)
    }

    /// Error path of [`Router::bind`]: the first slot (in first-reference
    /// order) whose variable the firing omitted.
    #[cold]
    fn unbound(&self, external: &BTreeMap<String, Value>) -> ExecError {
        for (var, task) in &self.ext_slots {
            if !external.contains_key(var) {
                return ExecError::UnboundInput {
                    task: task.clone(),
                    var: var.clone(),
                };
            }
        }
        unreachable!("bind() only takes the cold path on a missing slot")
    }
}

/// Executes the flattened design. `external` supplies values for the
/// design's input ports (by variable name); the report's `outputs` carries
/// the output-port values.
pub fn execute(
    design: &Flattened,
    lib: &ProgramLibrary,
    external: &BTreeMap<String, Value>,
    options: &ExecOptions,
) -> Result<ExecReport, ExecError> {
    let g = &design.graph;
    if !g.is_dag() {
        return Err(ExecError::Cyclic);
    }
    // All name resolution happens here; workers only see indices.
    let router = Router::build(design, lib)?;
    let externals = router.bind(external)?;

    let store = Store::new(g.task_count());
    let epoch = Instant::now();
    let ctx = Ctx {
        g,
        router: &router,
        options,
        store: &store,
        externals: &externals,
        epoch,
    };

    let out = match &options.mode {
        ExecMode::Greedy { workers } => {
            let n = if *workers == 0 {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            } else {
                *workers
            };
            if n == 1 {
                // A one-worker pool is a sequential loop: run it on the
                // caller's thread and skip the spawn/channel machinery.
                run_inline(&ctx)?
            } else {
                run_greedy(&ctx, n)?
            }
        }
        ExecMode::Pinned(schedule) => run_pinned(&ctx, schedule)?,
    };

    Ok(assemble_report(&router, &store, out, epoch, options.trace))
}

/// Collects a finished mode's output into the caller-facing report:
/// output-port values out of the slab, wall clock, optional trace.
/// Shared by `execute` and the persistent session.
pub(crate) fn assemble_report(
    router: &Router,
    store: &Store,
    out: ModeOutput,
    epoch: Instant,
    tracing: bool,
) -> ExecReport {
    let mut outputs = BTreeMap::new();
    for (var, t, out) in &router.out_ports {
        let vals = store.get(*t).expect("all tasks completed");
        outputs.insert(var.clone(), vals[*out].clone());
    }
    let wall = epoch.elapsed();
    let trace = tracing.then(|| Trace::from_events(out.events, out.workers, wall));
    ExecReport {
        outputs,
        runs: out.runs,
        wall,
        prints: out.prints,
        trace,
    }
}

/// What each dispatch mode hands back to `execute`.
pub(crate) struct ModeOutput {
    runs: Vec<TaskRun>,
    prints: Vec<(TaskId, String)>,
    /// Trace events (empty unless `ExecOptions::trace`).
    events: Vec<TraceEvent>,
    /// Worker threads that actually executed or recorded something —
    /// work-stealing runs where inlining collapsed the firing onto one
    /// thread report 1 regardless of pool size.
    workers: usize,
}

impl ModeOutput {
    /// Stable orders for reproducible reports.
    fn sorted(mut self) -> Self {
        self.runs
            .sort_by(|a, b| a.finish.cmp(&b.finish).then(a.task.cmp(&b.task)));
        self.prints.sort_by_key(|a| a.0);
        self
    }
}

/// Everything a worker needs, bundled so dispatch code stays readable.
/// One `Ctx` lives for one firing; the session rebuilds it per firing
/// around its long-lived router/store/graph.
pub(crate) struct Ctx<'a> {
    pub(crate) g: &'a TaskGraph,
    pub(crate) router: &'a Router,
    pub(crate) options: &'a ExecOptions,
    pub(crate) store: &'a Store,
    /// This firing's external-input values, in `Router` slot order.
    pub(crate) externals: &'a [Value],
    pub(crate) epoch: Instant,
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one task copy with the panic boundary every mode shares: a
/// panicking task body (or a broken internal invariant inside
/// [`run_one`]) becomes [`ExecError::WorkerPanic`] naming the task,
/// instead of unwinding through the worker thread — which the scoped
/// join would either swallow (pinned) or turn into a coordinator
/// deadlock-then-panic (greedy). When tracing, failures also record a
/// [`TraceEvent::TaskError`].
fn run_one_caught(
    ctx: &Ctx<'_>,
    worker: usize,
    t: TaskId,
    vm: &mut Vm,
    frame: &mut Vec<Value>,
    events: Option<&mut Vec<TraceEvent>>,
) -> Result<(TaskRun, Vec<(TaskId, String)>), ExecError> {
    let mut events = events;
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_one(ctx, worker, t, vm, frame, events.as_deref_mut())
    }))
    .unwrap_or_else(|payload| {
        Err(ExecError::WorkerPanic {
            task: ctx.g.task(t).name.clone(),
            message: panic_message(payload),
        })
    });
    if let (Err(e), Some(events)) = (&result, events) {
        events.push(TraceEvent::TaskError {
            task: ctx.g.task(t).name.clone(),
            worker,
            at: ctx.epoch.elapsed(),
            message: e.to_string(),
        });
    }
    result
}

/// One worker executing one task copy; shared by both modes. `vm` is the
/// worker's own bytecode frame and `frame` its input staging vector, both
/// reused across every task copy it executes — programs come pre-compiled
/// via the router, inputs arrive as `Arc` bumps from the slab store, so
/// the steady state performs no compilation, no string handling, and no
/// per-task allocation. `events` is `Some` iff tracing; only then are
/// input volumes and CoW counter deltas computed.
fn run_one(
    ctx: &Ctx<'_>,
    worker: usize,
    t: TaskId,
    vm: &mut Vm,
    frame: &mut Vec<Value>,
    events: Option<&mut Vec<TraceEvent>>,
) -> Result<(TaskRun, Vec<(TaskId, String)>), ExecError> {
    let route = &ctx.router.routes[t.index()];

    // Gather: one lock hold, one Arc bump per input.
    frame.clear();
    {
        let lock = ctx.store.outputs.lock();
        for feed in &route.feeds {
            frame.push(match *feed {
                Feed::Arc { src, out } => {
                    let produced = lock[src.index()]
                        .as_ref()
                        .expect("predecessor must have completed");
                    produced[out as usize].clone()
                }
                Feed::External(i) => ctx.externals[i as usize].clone(),
            });
        }
    }

    if let Some(pat) = &ctx.options.inject_panic {
        if ctx.g.task(t).name == *pat {
            panic!("injected fault: inject_panic matched task {pat:?}");
        }
    }

    // Trace preamble: per-input byte volumes (an f64 element is 8 bytes)
    // and the worker thread's cumulative CoW counters, read again after
    // the body so the delta attributes copies to this task.
    let trace_pre = events.as_ref().map(|_| {
        let bytes_in: Vec<(String, u64)> = route
            .compiled
            .input_names()
            .zip(frame.iter())
            .map(|(n, v)| (n.to_string(), (v.volume() * 8.0) as u64))
            .collect();
        (bytes_in, cow::counters())
    });

    let mut events = events;
    let start = ctx.epoch.elapsed();
    if let Some(events) = events.as_deref_mut() {
        events.push(TraceEvent::TaskStart {
            task: t,
            worker,
            at: start,
        });
    }
    let (dense_outputs, prints, ops) = if ctx.options.interp.reference {
        // Reference engine: rebuild the name-keyed view the tree-walker
        // expects. Cold path by construction (`banger trial --reference`).
        let inputs: BTreeMap<String, Value> = route
            .compiled
            .input_names()
            .map(str::to_string)
            .zip(frame.iter().cloned())
            .collect();
        let mut outcome =
            interp::run_with(&route.prog, &inputs, ctx.options.interp).map_err(|error| {
                ExecError::Run {
                    task: ctx.g.task(t).name.clone(),
                    error,
                }
            })?;
        let dense = route
            .compiled
            .output_names()
            .map(|n| {
                outcome
                    .outputs
                    .remove(n)
                    .expect("interpreter returns every declared output")
            })
            .collect();
        (dense, outcome.prints, outcome.ops)
    } else {
        let outcome = vm
            .run_dense(&route.compiled, frame, ctx.options.interp)
            .map_err(|error| ExecError::Run {
                task: ctx.g.task(t).name.clone(),
                error,
            })?;
        (outcome.outputs, outcome.prints, outcome.ops)
    };
    let finish = ctx.epoch.elapsed();
    let prints = prints.into_iter().map(|s| (t, s)).collect::<Vec<_>>();
    ctx.store.publish(t, dense_outputs);
    if let (Some(events), Some((bytes_in, (copies0, elems0)))) = (events, trace_pre) {
        let (copies1, elems1) = cow::counters();
        events.push(TraceEvent::TaskFinish {
            task: t,
            worker,
            start,
            finish,
            ops,
            cow_copies: copies1 - copies0,
            cow_bytes: (elems1 - elems0) * 8,
            bytes_in,
        });
    }
    Ok((
        TaskRun {
            task: t,
            worker,
            start,
            finish,
            ops,
        },
        prints,
    ))
}

/// Sequential execution on the caller's thread — what `Greedy {
/// workers: 1 }` means, without paying for a thread spawn and a channel
/// pair per `execute` call.
fn run_inline(ctx: &Ctx<'_>) -> Result<ModeOutput, ExecError> {
    let g = ctx.g;
    let mut indeg: Vec<usize> = g.task_ids().map(|t| g.in_degree(t)).collect();
    let mut ready: Vec<TaskId> = g.task_ids().filter(|t| indeg[t.index()] == 0).collect();
    let mut vm = Vm::new();
    let mut frame = Vec::new();
    let mut runs = Vec::with_capacity(g.task_count());
    let mut prints = Vec::new();
    let mut events = Vec::new();
    while let Some(t) = ready.pop() {
        let tracer = ctx.options.trace.then_some(&mut events);
        let (run, p) = run_one_caught(ctx, 0, t, &mut vm, &mut frame, tracer)?;
        runs.push(run);
        prints.extend(p);
        for s in g.successors(t) {
            let d = &mut indeg[s.index()];
            *d -= 1;
            if *d == 0 {
                ready.push(s);
            }
        }
    }
    Ok(ModeOutput {
        runs,
        prints,
        events,
        workers: 1,
    }
    .sorted())
}

/// A ready task travelling through the work-stealing deques, stamped
/// with its publication time iff tracing (for `QueueWait` attribution;
/// inline tasks never queue, so they carry no stamp).
pub(crate) type WsItem = (TaskId, Option<Duration>);

/// Barrier state guarded by [`WsState::coord`].
pub(crate) struct WsCoord {
    /// Pool workers (indices ≥ 1) parked between firings (session) or
    /// after their final firing.
    pub(crate) parked: usize,
    /// Pool workers whose threads died (injected faults); the session
    /// barrier counts them as permanently "parked".
    pub(crate) dead: usize,
}

/// Per-worker completed-work buffers, merged at flush points.
#[derive(Default)]
pub(crate) struct WsSink {
    runs: Vec<TaskRun>,
    prints: Vec<(TaskId, String)>,
    events: Vec<TraceEvent>,
}

/// Work-stealing shared state for one pool (one `execute` call, or the
/// whole lifetime of a session).
pub(crate) struct WsState {
    /// One stealer handle per worker deque, visible to every worker.
    pub(crate) stealers: Vec<deque::Stealer<WsItem>>,
    /// Remaining-predecessor count per task; the `fetch_sub` that hits
    /// zero owns publication of that task.
    indeg: Vec<AtomicU32>,
    /// Tasks not yet completed this firing; zero ends the firing.
    remaining: AtomicUsize,
    /// Workers inside the park path — the Dekker flag publishers check
    /// (fence + relaxed load, no syscall) before touching the condvar.
    pub(crate) waiting: AtomicUsize,
    pub(crate) coord: Mutex<WsCoord>,
    pub(crate) cv: Condvar,
    first_error: Mutex<Option<ExecError>>,
    sink: Mutex<WsSink>,
    /// Session teardown flag; one-shot executions never set it.
    pub(crate) shutdown: AtomicBool,
}

impl WsState {
    pub(crate) fn new(g: &TaskGraph, stealers: Vec<deque::Stealer<WsItem>>) -> Self {
        WsState {
            stealers,
            indeg: g
                .task_ids()
                .map(|t| AtomicU32::new(g.in_degree(t) as u32))
                .collect(),
            remaining: AtomicUsize::new(g.task_count()),
            waiting: AtomicUsize::new(0),
            coord: Mutex::new(WsCoord { parked: 0, dead: 0 }),
            cv: Condvar::new(),
            first_error: Mutex::new(None),
            sink: Mutex::new(WsSink::default()),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Rearms per-firing state for session reuse. Callers must ensure
    /// every pool worker is parked and every deque drained first.
    pub(crate) fn reset(&self, g: &TaskGraph) {
        for t in g.task_ids() {
            self.indeg[t.index()].store(g.in_degree(t) as u32, Ordering::Relaxed);
        }
        self.remaining.store(g.task_count(), Ordering::SeqCst);
        *self.first_error.lock() = None;
        let mut sink = self.sink.lock();
        sink.runs.clear();
        sink.prints.clear();
        sink.events.clear();
    }

    pub(crate) fn take_error(&self) -> Option<ExecError> {
        self.first_error.lock().take()
    }

    /// Drains every deque via the stealer side (used by session reset
    /// after a poisoned firing left items behind; all workers parked).
    pub(crate) fn drain_deques(&self) {
        for s in &self.stealers {
            while let Steal::Success(_) | Steal::Retry = s.steal() {}
        }
    }

    /// Collects the merged sink into a [`ModeOutput`] with
    /// engaged-worker accounting: `workers` is 1 + the highest worker
    /// index that actually ran or recorded anything, so utilization
    /// reflects threads that participated, not pool size.
    pub(crate) fn collect(&self) -> ModeOutput {
        let sink = std::mem::take(&mut *self.sink.lock());
        let mut hi = 0usize;
        for r in &sink.runs {
            hi = hi.max(r.worker);
        }
        for e in &sink.events {
            hi = hi.max(e.worker());
        }
        ModeOutput {
            runs: sink.runs,
            prints: sink.prints,
            events: sink.events,
            workers: hi + 1,
        }
        .sorted()
    }
}

/// One worker's private half of the work-stealing runtime: its deque,
/// its unstealable small-task stack, and its reusable Vm frame and
/// buffers. A session keeps these alive across firings so the warm
/// path allocates nothing.
pub(crate) struct WsWorker {
    me: usize,
    dq: deque::Worker<WsItem>,
    /// Ready tasks below the inline threshold: run by this worker,
    /// LIFO, never published, never woken for.
    pub(crate) local: Vec<TaskId>,
    vm: Vm,
    frame: Vec<Value>,
    runs: Vec<TaskRun>,
    prints: Vec<(TaskId, String)>,
    events: Vec<TraceEvent>,
    steals: u64,
    inlined: u64,
}

impl WsWorker {
    pub(crate) fn new(me: usize, dq: deque::Worker<WsItem>) -> Self {
        WsWorker {
            me,
            dq,
            local: Vec::new(),
            vm: Vm::new(),
            frame: Vec::new(),
            runs: Vec::new(),
            prints: Vec::new(),
            events: Vec::new(),
            steals: 0,
            inlined: 0,
        }
    }
}

/// Marker payload for an injected worker-thread death: unwinds through
/// `ws_run` into the spawn wrapper, which does the dead-worker
/// accounting. Distinguishable from a task-body panic (those are caught
/// by `run_one_caught` and never unwind this far).
struct WsDeath;

/// Next task for `w`: own small-task stack (LIFO, counts as inline),
/// then own deque (LIFO), then steal FIFO from the others — retrying
/// the round while any victim reports a racing `Retry`.
fn ws_next(ws: &WsState, w: &mut WsWorker) -> Option<WsItem> {
    if let Some(t) = w.local.pop() {
        w.inlined += 1;
        return Some((t, None));
    }
    if let Some(item) = w.dq.pop() {
        return Some(item);
    }
    let n = ws.stealers.len();
    loop {
        let mut retry = false;
        for k in 1..n {
            match ws.stealers[(w.me + k) % n].steal() {
                Steal::Success(item) => {
                    w.steals += 1;
                    return Some(item);
                }
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

/// Wakes parked workers if any might be sleeping. Pairs with the park
/// path in `ws_run`: the publisher orders its deque push before the
/// `waiting` read, the parker orders its `waiting` raise before the
/// deque re-check — one of the two must see the other.
fn ws_signal_work(ws: &WsState) {
    fence(Ordering::SeqCst);
    if ws.waiting.load(Ordering::Relaxed) > 0 {
        let _coord = ws.coord.lock();
        ws.cv.notify_all();
    }
}

/// Decrements successor in-degrees and publishes the newly ready ones:
/// small tasks onto `w`'s private stack, the rest into `w`'s own deque
/// for thieves — one wakeup check per batch, no coordinator round trip.
fn ws_publish_ready(ctx: &Ctx<'_>, ws: &WsState, w: &mut WsWorker, t: TaskId) {
    let mut pushed = false;
    for s in ctx.g.successors(t) {
        if ws.indeg[s.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
            if ctx.g.task(s).weight < ctx.options.inline_below {
                w.local.push(s);
            } else {
                let stamp = ctx.options.trace.then(|| ctx.epoch.elapsed());
                w.dq.push((s, stamp));
                pushed = true;
            }
        }
    }
    if pushed {
        ws_signal_work(ws);
    }
}

/// Completion accounting, after publication so a zero here means the
/// firing is fully drained. Returns true when this call ended it.
fn ws_task_done(ws: &WsState) -> bool {
    if ws.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Same Dekker pairing as `ws_signal_work`: sleepers raise
        // `waiting` before re-reading `remaining`, so either we see them
        // here or they see the zero.
        fence(Ordering::SeqCst);
        if ws.waiting.load(Ordering::Relaxed) > 0 {
            let _coord = ws.coord.lock();
            ws.cv.notify_all();
        }
        true
    } else {
        false
    }
}

/// Records the first error, poisons the store, and wakes everyone so
/// the firing unwinds instead of hanging.
pub(crate) fn ws_fail(ctx: &Ctx<'_>, ws: &WsState, e: ExecError) {
    {
        let mut lock = ws.first_error.lock();
        if lock.is_none() {
            *lock = Some(e);
        }
    }
    ctx.store.poison();
    let _coord = ws.coord.lock();
    ws.cv.notify_all();
}

/// Merges `w`'s buffered results into the shared sink and emits the
/// per-worker steal/inline counters as a [`TraceEvent::WorkerStats`]
/// when tracing. Called whenever the worker goes idle or exits, so
/// partially completed firings still surface their records.
pub(crate) fn ws_flush(ws: &WsState, w: &mut WsWorker, tracing: bool, epoch: Instant) {
    if tracing && (w.steals > 0 || w.inlined > 0) {
        w.events.push(TraceEvent::WorkerStats {
            worker: w.me,
            at: epoch.elapsed(),
            steals: w.steals,
            inline_tasks: w.inlined,
        });
    }
    w.steals = 0;
    w.inlined = 0;
    if w.runs.is_empty() && w.prints.is_empty() && w.events.is_empty() {
        return;
    }
    let mut sink = ws.sink.lock();
    sink.runs.append(&mut w.runs);
    sink.prints.append(&mut w.prints);
    sink.events.append(&mut w.events);
}

/// One worker's firing loop: run, publish, steal, park. Returns when
/// the firing completes, poisons, or the session shuts down. Leftover
/// private state (an uncleared `local` after poison) is the caller's
/// to clean up via `w.local.clear()` / session reset.
pub(crate) fn ws_run(ctx: &Ctx<'_>, ws: &WsState, w: &mut WsWorker) {
    let tracing = ctx.options.trace;
    loop {
        if ctx.store.poisoned.load(Ordering::SeqCst) {
            return;
        }
        let Some((t, enqueued)) = ws_next(ws, w) else {
            // Idle: flush (so stalled firings still show partial
            // traces), then park until work appears, the firing ends,
            // or the run poisons. The `waiting` raise happens under the
            // coord lock and before the deque re-check — see
            // `ws_signal_work` for the pairing.
            ws_flush(ws, w, tracing, ctx.epoch);
            let mut coord = ws.coord.lock();
            ws.waiting.fetch_add(1, Ordering::SeqCst);
            let run_over = loop {
                if ws.shutdown.load(Ordering::SeqCst)
                    || ctx.store.poisoned.load(Ordering::SeqCst)
                    || ws.remaining.load(Ordering::SeqCst) == 0
                {
                    break true;
                }
                if ws.stealers.iter().any(|s| !s.is_empty()) {
                    break false;
                }
                ws.cv.wait(&mut coord);
            };
            ws.waiting.fetch_sub(1, Ordering::SeqCst);
            if run_over {
                return;
            }
            continue;
        };
        if let Some(since) = enqueued {
            w.events.push(TraceEvent::QueueWait {
                task: t,
                worker: w.me,
                since,
                until: ctx.epoch.elapsed(),
            });
        }
        if let Some(pat) = &ctx.options.inject_worker_death {
            if ctx.g.task(t).name == *pat {
                ws_fail(
                    ctx,
                    ws,
                    ExecError::WorkerLost(format!(
                        "worker {} died with task {:?} in flight",
                        w.me,
                        ctx.g.task(t).name
                    )),
                );
                if w.me > 0 {
                    // Pool threads die for real: unwind into the spawn
                    // wrapper, which records the death. The caller's
                    // thread (worker 0) can't be killed, so it just
                    // stops participating.
                    std::panic::panic_any(WsDeath);
                }
                return;
            }
        }
        let tracer = tracing.then_some(&mut w.events);
        match run_one_caught(ctx, w.me, t, &mut w.vm, &mut w.frame, tracer) {
            Ok((run, p)) => {
                w.runs.push(run);
                w.prints.extend(p);
                ws_publish_ready(ctx, ws, w, t);
                if ws_task_done(ws) {
                    return;
                }
            }
            Err(e) => {
                ws_fail(ctx, ws, e);
                return;
            }
        }
    }
}

/// Seeds the roots into worker 0's private stack / deque before the
/// firing starts.
pub(crate) fn ws_seed(ctx: &Ctx<'_>, ws: &WsState, w: &mut WsWorker) {
    let mut pushed = false;
    for t in ctx.g.task_ids() {
        if ctx.g.in_degree(t) == 0 {
            if ctx.g.task(t).weight < ctx.options.inline_below {
                w.local.push(t);
            } else {
                let stamp = ctx.options.trace.then(|| ctx.epoch.elapsed());
                w.dq.push((t, stamp));
                pushed = true;
            }
        }
    }
    if pushed {
        ws_signal_work(ws);
    }
}

/// Thread body for pool workers (indices ≥ 1), shared by one-shot
/// greedy mode and sessions for a single firing: runs the worker loop
/// under a panic boundary, flushes, and accounts an injected death.
pub(crate) fn ws_pool_fire(ctx: &Ctx<'_>, ws: &WsState, w: &mut WsWorker) -> bool {
    let died = std::panic::catch_unwind(AssertUnwindSafe(|| ws_run(ctx, ws, w))).is_err();
    ws_flush(ws, w, ctx.options.trace, ctx.epoch);
    w.local.clear();
    if died {
        // Defence in depth: an unwind that wasn't the injected death
        // marker still poisons the run before the accounting below.
        ws_fail(
            ctx,
            ws,
            ExecError::WorkerLost(format!("worker {} thread died mid-run", w.me)),
        );
        let _coord = ws.coord.lock();
        ws.cv.notify_all();
    }
    died
}

/// Work-stealing greedy execution (`workers >= 2`): the caller's thread
/// is worker 0 and seeds/runs alongside the spawned pool.
fn run_greedy(ctx: &Ctx<'_>, workers: usize) -> Result<ModeOutput, ExecError> {
    let mut deques: Vec<deque::Worker<WsItem>> =
        (0..workers).map(|_| deque::Worker::new()).collect();
    let stealers = deques.iter().map(|d| d.stealer()).collect();
    let ws = WsState::new(ctx.g, stealers);
    let mut caller = WsWorker::new(0, deques.remove(0));
    ws_seed(ctx, &ws, &mut caller);

    std::thread::scope(|scope| {
        for (i, dq) in deques.into_iter().enumerate() {
            let ws = &ws;
            scope.spawn(move || {
                let mut w = WsWorker::new(i + 1, dq);
                if ws_pool_fire(ctx, ws, &mut w) {
                    let mut coord = ws.coord.lock();
                    coord.dead += 1;
                    ws.cv.notify_all();
                }
            });
        }
        ws_run(ctx, &ws, &mut caller);
        ws_flush(&ws, &mut caller, ctx.options.trace, ctx.epoch);
        caller.local.clear();
    });

    if let Some(e) = ws.take_error() {
        return Err(e);
    }
    Ok(ws.collect())
}

fn run_pinned(ctx: &Ctx<'_>, schedule: &Schedule) -> Result<ModeOutput, ExecError> {
    let g = ctx.g;
    // Per-worker ordered copy lists.
    let mut max_proc = 0usize;
    for p in schedule.placements() {
        max_proc = max_proc.max(p.proc.index() + 1);
    }
    for t in g.task_ids() {
        if schedule.placements_of(t).is_empty() {
            return Err(ExecError::BadSchedule(format!(
                "task {} is not placed",
                g.task(t).name
            )));
        }
    }
    let mut queues: Vec<Vec<(f64, TaskId)>> = vec![Vec::new(); max_proc];
    for p in schedule.placements() {
        queues[p.proc.index()].push((p.start, p.task));
    }
    for q in &mut queues {
        q.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    }

    let tracing = ctx.options.trace;
    type Runs = (Vec<TaskRun>, Vec<(TaskId, String)>);
    let results: Mutex<Runs> = Mutex::new((Vec::new(), Vec::new()));
    let first_error: Mutex<Option<ExecError>> = Mutex::new(None);
    let event_sink: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for (w, queue) in queues.iter().enumerate() {
            let results = &results;
            let first_error = &first_error;
            let event_sink = &event_sink;
            scope.spawn(move || {
                let mut vm = Vm::new();
                let mut frame = Vec::new();
                let mut events: Vec<TraceEvent> = Vec::new();
                let flush = |events: &mut Vec<TraceEvent>| {
                    if !events.is_empty() {
                        event_sink.lock().append(events);
                    }
                };
                for &(_, t) in queue {
                    // Wait for every predecessor to publish; when tracing,
                    // the blocked interval is the task's dependency wait.
                    let preds: Vec<TaskId> = g.predecessors(t).collect();
                    let since = tracing.then(|| ctx.epoch.elapsed());
                    if !ctx.store.wait_for(&preds) {
                        flush(&mut events);
                        return; // poisoned
                    }
                    if let Some(since) = since {
                        let until = ctx.epoch.elapsed();
                        if until > since {
                            events.push(TraceEvent::QueueWait {
                                task: t,
                                worker: w,
                                since,
                                until,
                            });
                        }
                    }
                    let tracer = tracing.then_some(&mut events);
                    match run_one_caught(ctx, w, t, &mut vm, &mut frame, tracer) {
                        Ok((run, p)) => {
                            let mut lock = results.lock();
                            lock.0.push(run);
                            lock.1.extend(p);
                        }
                        Err(e) => {
                            let mut lock = first_error.lock();
                            if lock.is_none() {
                                *lock = Some(e);
                            }
                            ctx.store.poison();
                            flush(&mut events);
                            return;
                        }
                    }
                }
                flush(&mut events);
            });
        }
    });

    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    let (runs, prints) = results.into_inner();
    Ok(ModeOutput {
        runs,
        prints,
        events: event_sink.into_inner(),
        workers: queues.len(),
    }
    .sorted())
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_machine::{Machine, MachineParams, Topology};
    use banger_taskgraph::hierarchy::HierGraph;

    /// A three-stage pipeline design:
    ///   a(in) -> double -> buf(storage) -> addone -> x(out)
    fn pipeline() -> (Flattened, ProgramLibrary) {
        let mut h = HierGraph::new("pipe");
        let a = h.add_storage("a", 1.0);
        let t1 = h.add_task_with_program("double", 2.0, "Double");
        let buf = h.add_storage("d", 1.0);
        let t2 = h.add_task_with_program("addone", 2.0, "AddOne");
        let x = h.add_storage("x", 1.0);
        h.add_flow(a, t1).unwrap();
        h.add_flow(t1, buf).unwrap();
        h.add_flow(buf, t2).unwrap();
        h.add_flow(t2, x).unwrap();
        let f = h.flatten().unwrap();
        let mut lib = ProgramLibrary::new();
        lib.add_source("task Double in a out d begin d := a * 2 end")
            .unwrap();
        lib.add_source("task AddOne in d out x begin x := d + 1 end")
            .unwrap();
        (f, lib)
    }

    fn ext(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn pipeline_computes() {
        let (f, lib) = pipeline();
        let report = execute(
            &f,
            &lib,
            &ext(&[("a", Value::Num(5.0))]),
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(report.outputs["x"], Value::Num(11.0));
        assert_eq!(report.runs.len(), 2);
        assert!(report.runs.iter().all(|r| r.ops > 0));
    }

    #[test]
    fn single_worker_matches_parallel() {
        let (f, lib) = pipeline();
        let one = execute(
            &f,
            &lib,
            &ext(&[("a", Value::Num(7.0))]),
            &ExecOptions {
                mode: ExecMode::Greedy { workers: 1 },
                ..ExecOptions::default()
            },
        )
        .unwrap();
        let many = execute(
            &f,
            &lib,
            &ext(&[("a", Value::Num(7.0))]),
            &ExecOptions {
                mode: ExecMode::Greedy { workers: 4 },
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(one.outputs, many.outputs);
    }

    /// A wide fan: one source, N independent squarers, one summer.
    fn fan(n: usize) -> (Flattened, ProgramLibrary) {
        let mut h = HierGraph::new("fan");
        let a = h.add_storage("a", 1.0);
        let src = h.add_task_with_program("spread", 1.0, "Spread");
        h.add_flow(a, src).unwrap();
        let sum = h.add_task_with_program("collect", 1.0, "Collect");
        let x = h.add_storage("x", 1.0);
        h.add_flow(sum, x).unwrap();
        let mut lib = ProgramLibrary::new();
        lib.add_source("task Spread in a out s begin s := a end")
            .unwrap();
        // Each worker squares s then adds its index; Collect sums k inputs.
        let mut collect_ins = Vec::new();
        for i in 0..n {
            let w = h.add_task_with_program(format!("w{i}"), 5.0, format!("W{i}"));
            h.add_arc(src, w, "s", 1.0).unwrap();
            h.add_arc(w, sum, format!("r{i}"), 1.0).unwrap();
            lib.add_source(&format!(
                "task W{i} in s out r{i} begin r{i} := s * s + {i} end"
            ))
            .unwrap();
            collect_ins.push(format!("r{i}"));
        }
        let body: String = collect_ins
            .iter()
            .map(|v| format!("x := x + {v} "))
            .collect();
        lib.add_source(&format!(
            "task Collect in {} out x begin x := 0 {body} end",
            collect_ins.join(", ")
        ))
        .unwrap();
        (h.flatten().unwrap(), lib)
    }

    #[test]
    fn fan_out_fan_in_all_modes() {
        let (f, lib) = fan(8);
        let want = {
            // sum of (a^2 + i) for i in 0..8 with a = 3 => 8*9 + 28 = 100
            Value::Num(100.0)
        };
        for workers in [1, 2, 8] {
            let r = execute(
                &f,
                &lib,
                &ext(&[("a", Value::Num(3.0))]),
                &ExecOptions {
                    mode: ExecMode::Greedy { workers },
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            assert_eq!(r.outputs["x"], want, "workers={workers}");
            assert_eq!(r.runs.len(), 10);
        }
    }

    #[test]
    fn pinned_mode_follows_schedule() {
        let (f, lib) = fan(6);
        let m = Machine::new(Topology::fully_connected(3), MachineParams::default());
        let s = banger_sched::list::etf(&f.graph, &m);
        let r = execute(
            &f,
            &lib,
            &ext(&[("a", Value::Num(2.0))]),
            &ExecOptions {
                mode: ExecMode::pinned(s.clone()),
                ..ExecOptions::default()
            },
        )
        .unwrap();
        // 6*(4) + 15 = 39
        assert_eq!(r.outputs["x"], Value::Num(39.0));
        // Workers used match the schedule's processors.
        for run in &r.runs {
            let placed = s
                .placements_of(run.task)
                .iter()
                .map(|p| p.proc.index())
                .collect::<Vec<_>>();
            assert!(placed.contains(&run.worker), "task {}", run.task);
        }
    }

    #[test]
    fn pinned_mode_executes_duplicates() {
        let (f, lib) = fan(4);
        let m = Machine::new(
            Topology::fully_connected(4),
            MachineParams {
                msg_startup: 5.0,
                ..MachineParams::default()
            },
        );
        let s = banger_sched::dsh::dsh(&f.graph, &m);
        let copies = s.placements().len();
        let r = execute(
            &f,
            &lib,
            &ext(&[("a", Value::Num(2.0))]),
            &ExecOptions {
                mode: ExecMode::pinned(s),
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.runs.len(), copies);
        assert_eq!(r.outputs["x"], Value::Num(22.0)); // 4*4 + 6
    }

    #[test]
    fn missing_program_fails_fast() {
        let mut h = HierGraph::new("bad");
        h.add_task("orphan", 1.0); // no program attached
        let f = h.flatten().unwrap();
        let lib = ProgramLibrary::new();
        let err = execute(&f, &lib, &BTreeMap::new(), &ExecOptions::default()).unwrap_err();
        assert!(matches!(err, ExecError::NoProgram(_)), "{err}");
    }

    #[test]
    fn unknown_program_fails_fast() {
        let mut h = HierGraph::new("bad");
        h.add_task_with_program("t", 1.0, "NoSuch");
        let f = h.flatten().unwrap();
        let lib = ProgramLibrary::new();
        let err = execute(&f, &lib, &BTreeMap::new(), &ExecOptions::default()).unwrap_err();
        assert_eq!(err, ExecError::UnknownProgram("NoSuch".into()));
    }

    #[test]
    fn unbound_input_reported() {
        let (f, lib) = pipeline();
        let err = execute(&f, &lib, &BTreeMap::new(), &ExecOptions::default()).unwrap_err();
        assert!(
            matches!(err, ExecError::UnboundInput { ref var, .. } if var == "a"),
            "{err}"
        );
    }

    #[test]
    fn arc_without_declared_output_fails_at_routing_time() {
        // `bad` promises `b` on its arc but its program never declares it:
        // the router must reject the binding before any task runs.
        let mut h = HierGraph::new("m");
        let t = h.add_task_with_program("bad", 1.0, "Bad");
        let u = h.add_task_with_program("after", 1.0, "After");
        let x = h.add_storage("x", 1.0);
        h.add_arc(t, u, "b", 1.0).unwrap();
        h.add_flow(u, x).unwrap();
        let mut lib = ProgramLibrary::new();
        lib.add_source("task Bad out c begin c := 1 end").unwrap();
        lib.add_source("task After in b out x begin x := b end")
            .unwrap();
        let err = execute(
            &h.flatten().unwrap(),
            &lib,
            &BTreeMap::new(),
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::MissingArcValue {
                producer: "bad".into(),
                var: "b".into()
            }
        );
    }

    #[test]
    fn runtime_error_propagates_and_stops() {
        let mut h = HierGraph::new("boom");
        let a = h.add_storage("a", 1.0);
        let t = h.add_task_with_program("bad", 1.0, "Bad");
        let u = h.add_task_with_program("after", 1.0, "After");
        let x = h.add_storage("x", 1.0);
        h.add_flow(a, t).unwrap();
        h.add_arc(t, u, "b", 1.0).unwrap();
        h.add_flow(u, x).unwrap();
        let mut lib = ProgramLibrary::new();
        // Bad reads an undefined variable.
        lib.add_source("task Bad in a out b begin b := nodef end")
            .unwrap();
        lib.add_source("task After in b out x begin x := b end")
            .unwrap();
        let err = execute(
            &h.flatten().unwrap(),
            &lib,
            &ext(&[("a", Value::Num(1.0))]),
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, ExecError::Run { ref task, .. } if task == "bad"),
            "{err}"
        );
    }

    #[test]
    fn step_limit_enforced_per_task() {
        let mut h = HierGraph::new("spin");
        let t = h.add_task_with_program("spin", 1.0, "Spin");
        let x = h.add_storage("x", 1.0);
        h.add_flow(t, x).unwrap();
        let mut lib = ProgramLibrary::new();
        lib.add_source("task Spin out x begin x := 0 while 1 do x := x + 1 end end")
            .unwrap();
        let err = execute(
            &h.flatten().unwrap(),
            &lib,
            &BTreeMap::new(),
            &ExecOptions {
                interp: InterpConfig {
                    max_steps: 5_000,
                    ..Default::default()
                },
                ..ExecOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                ExecError::Run {
                    error: RunError::StepLimit(_),
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn measured_weights_returned() {
        let (f, lib) = fan(4);
        let r = execute(
            &f,
            &lib,
            &ext(&[("a", Value::Num(2.0))]),
            &ExecOptions::default(),
        )
        .unwrap();
        let w = r.measured_weights(f.graph.task_count());
        assert_eq!(w.len(), f.graph.task_count());
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn reference_interpreter_matches_vm_engine() {
        let (f, lib) = fan(6);
        let run = |reference: bool| {
            execute(
                &f,
                &lib,
                &ext(&[("a", Value::Num(3.0))]),
                &ExecOptions {
                    interp: InterpConfig {
                        reference,
                        ..Default::default()
                    },
                    ..ExecOptions::default()
                },
            )
            .unwrap()
        };
        let vm = run(false);
        let tree = run(true);
        assert_eq!(vm.outputs, tree.outputs);
        assert_eq!(vm.prints, tree.prints);
        // Measured weights (the scheduler's input) must be engine-independent.
        let n = f.graph.task_count();
        assert_eq!(vm.measured_weights(n), tree.measured_weights(n));
    }

    #[test]
    fn prints_tagged_by_task() {
        let mut h = HierGraph::new("p");
        let t = h.add_task_with_program("talker", 1.0, "Talk");
        let x = h.add_storage("x", 1.0);
        h.add_flow(t, x).unwrap();
        let mut lib = ProgramLibrary::new();
        lib.add_source("task Talk out x begin print 42 x := 1 end")
            .unwrap();
        let r = execute(
            &h.flatten().unwrap(),
            &lib,
            &BTreeMap::new(),
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(r.prints.len(), 1);
        assert_eq!(r.prints[0].1, "42");
    }

    #[test]
    fn fanned_array_is_shared_not_copied() {
        // One producer builds a big array; N consumers each read one
        // element. Every consumer's binding must share the producer's
        // buffer — verified end-to-end by routing the array back out and
        // checking the external output still shares with what a consumer
        // saw (all Arc bumps, zero copies on the read-only path).
        let mut h = HierGraph::new("share");
        let src = h.add_task_with_program("make", 1.0, "Make");
        let x = h.add_storage("big", 1.0);
        h.add_flow(src, x).unwrap();
        let mut lib = ProgramLibrary::new();
        lib.add_source("task Make out big begin big := fill(1000, 3) end")
            .unwrap();
        let mut readers = Vec::new();
        for i in 0..4 {
            let r = h.add_task_with_program(format!("read{i}"), 1.0, format!("Read{i}"));
            h.add_arc(src, r, "big", 1.0).unwrap();
            let o = h.add_storage(format!("o{i}"), 1.0);
            h.add_flow(r, o).unwrap();
            lib.add_source(&format!(
                "task Read{i} in big out o{i} begin o{i} := big[{}] end",
                i + 1
            ))
            .unwrap();
            readers.push(r);
        }
        let f = h.flatten().unwrap();
        let r1 = execute(&f, &lib, &BTreeMap::new(), &ExecOptions::default()).unwrap();
        for i in 0..4 {
            assert_eq!(r1.outputs[&format!("o{i}")], Value::Num(3.0));
        }
        // Running twice: the externally visible array is a fresh buffer
        // per run (produced by the task), but within one run all consumer
        // bindings shared it — sanity-checked via the output port value.
        let r2 = execute(&f, &lib, &BTreeMap::new(), &ExecOptions::default()).unwrap();
        assert_eq!(r1.outputs["big"], r2.outputs["big"]);
        assert!(
            !r1.outputs["big"].shares_buffer(&r2.outputs["big"]),
            "separate runs produce separate buffers"
        );
    }

    #[test]
    fn consumer_write_does_not_corrupt_sibling_reads() {
        // Producer fans an array to a mutating consumer and a reading
        // consumer; the mutation must never leak into the sibling.
        let mut h = HierGraph::new("cow");
        let src = h.add_task_with_program("make", 1.0, "Mk");
        let w = h.add_task_with_program("writer", 1.0, "Wr");
        let r = h.add_task_with_program("reader", 1.0, "Rd");
        let o1 = h.add_storage("wa", 1.0);
        let o2 = h.add_storage("ra", 1.0);
        h.add_arc(src, w, "v", 1.0).unwrap();
        h.add_arc(src, r, "v", 1.0).unwrap();
        h.add_flow(w, o1).unwrap();
        h.add_flow(r, o2).unwrap();
        let mut lib = ProgramLibrary::new();
        lib.add_source("task Mk out v begin v := fill(8, 1) end")
            .unwrap();
        lib.add_source("task Wr in v out wa begin v[1] := 99 wa := v[1] end")
            .unwrap();
        lib.add_source("task Rd in v out ra begin ra := v[1] end")
            .unwrap();
        let f = h.flatten().unwrap();
        // Race-free regardless of interleaving: run both orders many times.
        for workers in [1, 2, 4] {
            let rep = execute(
                &f,
                &lib,
                &BTreeMap::new(),
                &ExecOptions {
                    mode: ExecMode::Greedy { workers },
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            assert_eq!(rep.outputs["wa"], Value::Num(99.0), "workers={workers}");
            assert_eq!(rep.outputs["ra"], Value::Num(1.0), "workers={workers}");
        }
    }

    #[test]
    fn worker_panic_reported_with_task_name_all_modes() {
        let (f, lib) = fan(6);
        let m = Machine::new(Topology::fully_connected(3), MachineParams::default());
        let s = banger_sched::list::etf(&f.graph, &m);
        let modes = [
            ExecMode::Greedy { workers: 1 },
            ExecMode::Greedy { workers: 4 },
            ExecMode::pinned(s),
        ];
        for mode in modes {
            let err = execute(
                &f,
                &lib,
                &ext(&[("a", Value::Num(2.0))]),
                &ExecOptions {
                    mode: mode.clone(),
                    inject_panic: Some("w3".into()),
                    ..ExecOptions::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(
                    err,
                    ExecError::WorkerPanic { ref task, ref message }
                        if task == "w3" && message.contains("injected fault")
                ),
                "mode {mode:?}: {err}"
            );
        }
    }

    #[test]
    fn greedy_error_with_outstanding_work_does_not_panic() {
        // A failing task in a wide fan leaves siblings outstanding when
        // the coordinator poisons; this used to hit the
        // `expect("workers alive")` coordinator panic in edge cases and
        // must now always return an error cleanly.
        let (f, lib) = fan(16);
        for _ in 0..20 {
            let err = execute(
                &f,
                &lib,
                &ext(&[("a", Value::Num(2.0))]),
                &ExecOptions {
                    mode: ExecMode::Greedy { workers: 4 },
                    inject_panic: Some("w0".into()),
                    ..ExecOptions::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(
                    err,
                    ExecError::WorkerPanic { .. } | ExecError::WorkerLost(_)
                ),
                "{err}"
            );
        }
    }

    #[test]
    fn traced_run_matches_untraced() {
        let (f, lib) = fan(8);
        let inputs = ext(&[("a", Value::Num(3.0))]);
        for workers in [1, 4] {
            let base = ExecOptions {
                mode: ExecMode::Greedy { workers },
                ..ExecOptions::default()
            };
            let plain = execute(&f, &lib, &inputs, &base).unwrap();
            let traced = execute(
                &f,
                &lib,
                &inputs,
                &ExecOptions {
                    trace: true,
                    ..base
                },
            )
            .unwrap();
            assert_eq!(plain.outputs, traced.outputs, "workers={workers}");
            assert_eq!(plain.prints, traced.prints);
            let n = f.graph.task_count();
            assert_eq!(plain.measured_weights(n), traced.measured_weights(n));
            assert!(plain.trace.is_none());
            let trace = traced.trace.expect("trace recorded");
            // Engaged-worker accounting: inlining may collapse the whole
            // firing onto fewer threads than the pool holds.
            assert!(
                (1..=workers).contains(&trace.workers),
                "engaged {} of {workers}",
                trace.workers
            );
            assert_eq!(trace.spans().len(), traced.runs.len());
            let summary = trace.summary();
            assert_eq!(summary.tasks, n);
            assert_eq!(summary.ops, traced.runs.iter().map(|r| r.ops).sum::<u64>());
        }
    }

    #[test]
    fn trace_records_cow_copy_with_bytes() {
        // Producer fans an array to a writer: the writer's index
        // assignment hits a shared buffer and must show up as exactly
        // one CoW copy of 8*len bytes attributed to that task.
        let mut h = HierGraph::new("cowtrace");
        let src = h.add_task_with_program("make", 1.0, "Mk");
        let w = h.add_task_with_program("writer", 1.0, "Wr");
        let r = h.add_task_with_program("reader", 1.0, "Rd");
        let o1 = h.add_storage("wa", 1.0);
        let o2 = h.add_storage("ra", 1.0);
        h.add_arc(src, w, "v", 1.0).unwrap();
        h.add_arc(src, r, "v", 1.0).unwrap();
        h.add_flow(w, o1).unwrap();
        h.add_flow(r, o2).unwrap();
        let mut lib = ProgramLibrary::new();
        lib.add_source("task Mk out v begin v := fill(64, 1) end")
            .unwrap();
        lib.add_source("task Wr in v out wa begin v[1] := 99 wa := v[1] end")
            .unwrap();
        lib.add_source("task Rd in v out ra begin ra := v[1] end")
            .unwrap();
        let f = h.flatten().unwrap();
        let rep = execute(
            &f,
            &lib,
            &BTreeMap::new(),
            &ExecOptions {
                mode: ExecMode::Greedy { workers: 1 },
                trace: true,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        let trace = rep.trace.unwrap();
        let writer_finish = trace
            .events
            .iter()
            .find_map(|e| match e {
                TraceEvent::TaskFinish {
                    task,
                    cow_copies,
                    cow_bytes,
                    bytes_in,
                    ..
                } if f.graph.task(*task).name == "writer" => {
                    Some((*cow_copies, *cow_bytes, bytes_in.clone()))
                }
                _ => None,
            })
            .expect("writer traced");
        assert_eq!(writer_finish.0, 1, "one CoW copy");
        assert_eq!(writer_finish.1, 64 * 8, "copied the whole buffer");
        assert_eq!(writer_finish.2, vec![("v".to_string(), 64 * 8)]);
        let summary = trace.summary();
        assert_eq!(summary.cow_copies, 1);
        // Reader + writer each gathered the 64-element array.
        assert_eq!(summary.bytes_in, 2 * 64 * 8);
    }

    #[test]
    fn pinned_trace_observed_schedule_covers_all_copies() {
        let (f, lib) = fan(6);
        let m = Machine::new(Topology::fully_connected(3), MachineParams::default());
        let s = banger_sched::list::etf(&f.graph, &m);
        let rep = execute(
            &f,
            &lib,
            &ext(&[("a", Value::Num(2.0))]),
            &ExecOptions {
                mode: ExecMode::pinned(s),
                trace: true,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        let trace = rep.trace.unwrap();
        let obs = trace.observed_schedule(f.graph.task_count());
        assert_eq!(obs.placements().len(), rep.runs.len());
        for t in f.graph.task_ids() {
            assert!(obs.primary(t).is_some(), "task {t} has a primary span");
        }
        assert!(obs.makespan() > 0.0);
    }

    #[test]
    fn stealable_path_matches_inline_path() {
        // inline_below: 0.0 forces every ready task through the deques
        // (cross-thread handoff path); results must match the default
        // all-inline collapse and the one-worker loop.
        let (f, lib) = fan(12);
        let inputs = ext(&[("a", Value::Num(3.0))]);
        let run = |workers: usize, inline_below: f64| {
            execute(
                &f,
                &lib,
                &inputs,
                &ExecOptions {
                    mode: ExecMode::Greedy { workers },
                    inline_below,
                    ..ExecOptions::default()
                },
            )
            .unwrap()
        };
        let one = run(1, DEFAULT_INLINE_BELOW);
        for workers in [2, 4] {
            let stealing = run(workers, 0.0);
            let inlined = run(workers, f64::INFINITY);
            assert_eq!(one.outputs, stealing.outputs, "workers={workers}");
            assert_eq!(one.outputs, inlined.outputs, "workers={workers}");
            let n = f.graph.task_count();
            assert_eq!(one.measured_weights(n), stealing.measured_weights(n));
            assert_eq!(one.measured_weights(n), inlined.measured_weights(n));
        }
    }

    #[test]
    fn trace_counts_inline_and_stolen_tasks() {
        let (f, lib) = fan(10);
        let inputs = ext(&[("a", Value::Num(2.0))]);
        let traced = |inline_below: f64| {
            execute(
                &f,
                &lib,
                &inputs,
                &ExecOptions {
                    mode: ExecMode::Greedy { workers: 4 },
                    trace: true,
                    inline_below,
                    ..ExecOptions::default()
                },
            )
            .unwrap()
            .trace
            .unwrap()
            .summary()
        };
        // All weights are tiny, so the default threshold inlines every
        // task; nothing is ever stealable.
        let inlined = traced(DEFAULT_INLINE_BELOW);
        assert_eq!(inlined.inline_tasks, f.graph.task_count() as u64);
        assert_eq!(inlined.steals, 0);
        // Threshold 0 publishes everything; inline count must be zero.
        // (Steal count depends on scheduling luck — on a loaded host the
        // pool may drain everything from its own deques.)
        let stealing = traced(0.0);
        assert_eq!(stealing.inline_tasks, 0);
    }

    #[test]
    fn injected_worker_death_surfaces_as_worker_lost() {
        let (f, lib) = fan(12);
        let inputs = ext(&[("a", Value::Num(2.0))]);
        for inline_below in [0.0, DEFAULT_INLINE_BELOW] {
            let err = execute(
                &f,
                &lib,
                &inputs,
                &ExecOptions {
                    mode: ExecMode::Greedy { workers: 4 },
                    inline_below,
                    inject_worker_death: Some("w5".into()),
                    ..ExecOptions::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, ExecError::WorkerLost(ref m) if m.contains("w5")),
                "inline_below={inline_below}: {err}"
            );
        }
    }

    #[test]
    fn external_array_fans_out_as_refcount_bumps() {
        // An external input array feeding several tasks is densified once
        // and bump-shared per consumer; results stay correct at any
        // worker count.
        let (f, lib) = {
            let mut h = HierGraph::new("extfan");
            let a = h.add_storage("v", 1.0);
            let mut lib = ProgramLibrary::new();
            for i in 0..3 {
                let t = h.add_task_with_program(format!("s{i}"), 1.0, format!("S{i}"));
                h.add_flow(a, t).unwrap();
                let o = h.add_storage(format!("x{i}"), 1.0);
                h.add_flow(t, o).unwrap();
                lib.add_source(&format!(
                    "task S{i} in v out x{i} begin x{i} := sum(v) + {i} end"
                ))
                .unwrap();
            }
            (h.flatten().unwrap(), lib)
        };
        let big = Value::array((0..512).map(f64::from).collect());
        let want: f64 = (0..512).map(f64::from).sum();
        let rep = execute(&f, &lib, &ext(&[("v", big)]), &ExecOptions::default()).unwrap();
        for i in 0..3 {
            assert_eq!(rep.outputs[&format!("x{i}")], Value::Num(want + i as f64));
        }
    }
}
