//! Persistent executions: one design, many firings, zero warm-up.
//!
//! [`execute`](crate::execute) is the one-shot entry point: every call
//! re-resolves the routing tables, allocates a fresh slab store, spawns
//! worker threads, and tears it all down again. For a parameter sweep
//! or a convergence loop that fires the same design thousands of times,
//! that setup dwarfs the work — exactly the overhead SDFG-style systems
//! avoid by keeping the compiled dataflow "hot" between invocations.
//!
//! A [`Session`] hoists everything firing-invariant out of the loop:
//!
//! * the [`Router`] (name resolution, `Arc<CompiledProgram>` handles,
//!   output-port bindings) is built once;
//! * the slab [`Store`] keeps its allocation and is cleared, not
//!   rebuilt, per firing;
//! * worker threads are spawned once and *parked* on the work-stealing
//!   runtime's condvar between firings — a warm firing whose tasks all
//!   fall below [`ExecOptions::inline_below`] runs entirely on the
//!   caller's thread and never wakes them at all;
//! * each worker's [`Vm`](banger_calc::vm::Vm) frame, input staging
//!   vector, and deque survive across firings.
//!
//! Per firing, only the external-input values are re-bound
//! ([`Router::bind`]) and the per-firing counters re-armed. The firing
//! itself runs the same `ws_run` loop as one-shot greedy mode, so
//! results, traces, and error attribution are identical to
//! [`execute`](crate::execute) — the differential suites assert this.
//!
//! ```text
//! run(ext):  bind → reset(store, counters, deques) → publish firing
//!            → seed roots → caller joins the pool → barrier (every
//!            pool worker parked again) → report
//! ```
//!
//! The end-of-firing barrier waits until `parked + dead == pool`:
//! workers park between firings under the coord lock (notifying the
//! barrier), and a worker thread killed by fault injection counts as
//! permanently parked, so worker loss surfaces as
//! [`ExecError::WorkerLost`] instead of a hang. Dropping the session
//! sets the shutdown flag, wakes everyone, and joins the threads.

use crate::runner::{
    assemble_report, ws_flush, ws_pool_fire, ws_run, ws_seed, Ctx, ExecError, ExecMode,
    ExecOptions, ExecReport, Router, Store, WsItem, WsState, WsWorker,
};
use banger_calc::{ProgramLibrary, Value};
use banger_taskgraph::hierarchy::Flattened;
use banger_taskgraph::TaskGraph;
use crossbeam::deque;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// What changes between firings: the epoch all trace timestamps are
/// relative to, and the bound external-input values. Shared with pool
/// workers by `Arc` so a firing needs no borrows from the caller.
struct FiringShared {
    epoch: Instant,
    externals: Vec<Value>,
}

/// Everything firing-invariant, shared between the session handle and
/// its pool threads.
struct SessionCore {
    graph: TaskGraph,
    router: Router,
    store: Store,
    ws: WsState,
    options: ExecOptions,
    firing: Mutex<Arc<FiringShared>>,
}

/// A persistent executor for one flattened design: worker threads stay
/// parked, routing tables and slab storage stay allocated, and each
/// [`Session::run`] is one firing. See the module docs for the
/// lifecycle; `banger run --repeat N` and
/// [`Project::session`](https://docs.rs/banger-core) surface this.
pub struct Session {
    core: Arc<SessionCore>,
    caller: WsWorker,
    /// Pool thread count (`workers - 1`; the caller is worker 0).
    pool: usize,
    threads: Vec<JoinHandle<()>>,
}

impl Session {
    /// Builds the routing tables, allocates the store, and spawns the
    /// parked worker pool. Fails on the same structural errors as
    /// [`execute`](crate::execute) (`Cyclic`, `NoProgram`,
    /// `UnknownProgram`, `MissingArcValue`); per-firing value errors
    /// (`UnboundInput`) surface from [`Session::run`] instead. Only
    /// greedy mode persists — a pinned schedule is rejected as
    /// `BadSchedule`.
    pub fn new(
        design: &Flattened,
        lib: &ProgramLibrary,
        options: &ExecOptions,
    ) -> Result<Self, ExecError> {
        let workers = match &options.mode {
            ExecMode::Greedy { workers } => {
                if *workers == 0 {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                } else {
                    *workers
                }
            }
            ExecMode::Pinned(_) => {
                return Err(ExecError::BadSchedule(
                    "persistent sessions support greedy mode only".into(),
                ))
            }
        };
        if !design.graph.is_dag() {
            return Err(ExecError::Cyclic);
        }
        let router = Router::build(design, lib)?;
        let mut deques: Vec<deque::Worker<WsItem>> =
            (0..workers).map(|_| deque::Worker::new()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let core = Arc::new(SessionCore {
            graph: design.graph.clone(),
            router,
            store: Store::new(design.graph.task_count()),
            ws: WsState::new(&design.graph, stealers),
            options: options.clone(),
            firing: Mutex::new(Arc::new(FiringShared {
                epoch: Instant::now(),
                externals: Vec::new(),
            })),
        });
        let caller = WsWorker::new(0, deques.remove(0));
        let threads = deques
            .into_iter()
            .enumerate()
            .map(|(i, dq)| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("banger-exec-{}", i + 1))
                    .spawn(move || session_thread(core, i + 1, dq))
                    .expect("spawn session worker")
            })
            .collect();
        Ok(Session {
            core,
            caller,
            pool: workers - 1,
            threads,
        })
    }

    /// Worker threads in the session, including the caller's.
    pub fn workers(&self) -> usize {
        self.pool + 1
    }

    /// One firing: binds `external`, re-arms the per-firing state, runs
    /// the design on the warm pool, and waits for every pool worker to
    /// park again. Reports are identical to what
    /// [`execute`](crate::execute) returns for the same options, firing
    /// after firing — errors (including injected panics) poison only
    /// their own firing, and the next `run` starts clean.
    pub fn run(&mut self, external: &BTreeMap<String, Value>) -> Result<ExecReport, ExecError> {
        let core = &self.core;
        let externals = core.router.bind(external)?;

        // All pool workers are parked here (barrier of the previous
        // firing / fresh construction), so the reset can't race a
        // running worker. Deques are non-empty only after a poisoned
        // firing; drained before any worker can see stale items.
        core.store.reset();
        core.ws.drain_deques();
        self.caller.local.clear();
        core.ws.reset(&core.graph);

        let epoch = Instant::now();
        let firing = Arc::new(FiringShared { epoch, externals });
        *core.firing.lock() = Arc::clone(&firing);
        let ctx = Ctx {
            g: &core.graph,
            router: &core.router,
            options: &core.options,
            store: &core.store,
            externals: &firing.externals,
            epoch,
        };

        ws_seed(&ctx, &core.ws, &mut self.caller);
        ws_run(&ctx, &core.ws, &mut self.caller);
        ws_flush(&core.ws, &mut self.caller, core.options.trace, epoch);
        self.caller.local.clear();
        // A poisoned firing can leave published items behind; clear
        // them *before* the barrier so a worker that re-checks its wake
        // condition after parking finds nothing and stays asleep.
        core.ws.drain_deques();

        // End-of-firing barrier: every pool worker parked (or dead —
        // fault injection kills threads for real; they count as
        // permanently parked so loss can't hang the session).
        {
            let mut coord = core.ws.coord.lock();
            while coord.parked + coord.dead < self.pool {
                core.ws.cv.wait(&mut coord);
            }
        }

        if let Some(e) = core.ws.take_error() {
            return Err(e);
        }
        Ok(assemble_report(
            &core.router,
            &core.store,
            core.ws.collect(),
            epoch,
            core.options.trace,
        ))
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.core.ws.shutdown.store(true, Ordering::SeqCst);
        {
            let _coord = self.core.ws.coord.lock();
            self.core.ws.cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Pool thread body: park between firings, join each firing's
/// work-stealing loop, repeat until shutdown. Parking raises the
/// Dekker `waiting` flag so the caller's seed publication wakes us, and
/// bumps `parked` under the coord lock so the end-of-firing barrier
/// sees us.
fn session_thread(core: Arc<SessionCore>, me: usize, dq: deque::Worker<WsItem>) {
    let mut w = WsWorker::new(me, dq);
    loop {
        {
            let mut coord = core.ws.coord.lock();
            coord.parked += 1;
            core.ws.cv.notify_all(); // the barrier may be waiting on us
            core.ws.waiting.fetch_add(1, Ordering::SeqCst);
            loop {
                if core.ws.shutdown.load(Ordering::SeqCst) {
                    core.ws.waiting.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
                if core.ws.stealers.iter().any(|s| !s.is_empty()) {
                    break;
                }
                core.ws.cv.wait(&mut coord);
            }
            core.ws.waiting.fetch_sub(1, Ordering::SeqCst);
            coord.parked -= 1;
        }
        // Work is visible: snapshot the current firing and join it.
        let firing = core.firing.lock().clone();
        let ctx = Ctx {
            g: &core.graph,
            router: &core.router,
            options: &core.options,
            store: &core.store,
            externals: &firing.externals,
            epoch: firing.epoch,
        };
        if ws_pool_fire(&ctx, &core.ws, &mut w) {
            // Injected death: stay dead. The accounting below is what
            // lets the barrier (and future firings) proceed without us.
            let mut coord = core.ws.coord.lock();
            coord.dead += 1;
            core.ws.cv.notify_all();
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{execute, DEFAULT_INLINE_BELOW};
    use banger_taskgraph::hierarchy::HierGraph;

    /// source -> N squarers -> sum, with an external input `a`.
    fn fan(n: usize) -> (Flattened, ProgramLibrary) {
        let mut h = HierGraph::new("fan");
        let a = h.add_storage("a", 1.0);
        let src = h.add_task_with_program("spread", 1.0, "Spread");
        h.add_flow(a, src).unwrap();
        let sum = h.add_task_with_program("collect", 1.0, "Collect");
        let x = h.add_storage("x", 1.0);
        h.add_flow(sum, x).unwrap();
        let mut lib = ProgramLibrary::new();
        lib.add_source("task Spread in a out s begin s := a end")
            .unwrap();
        let mut ins = Vec::new();
        for i in 0..n {
            let w = h.add_task_with_program(format!("w{i}"), 5.0, format!("W{i}"));
            h.add_arc(src, w, "s", 1.0).unwrap();
            h.add_arc(w, sum, format!("r{i}"), 1.0).unwrap();
            lib.add_source(&format!(
                "task W{i} in s out r{i} begin r{i} := s * s + {i} end"
            ))
            .unwrap();
            ins.push(format!("r{i}"));
        }
        let body: String = ins.iter().map(|v| format!("x := x + {v} ")).collect();
        lib.add_source(&format!(
            "task Collect in {} out x begin x := 0 {body} end",
            ins.join(", ")
        ))
        .unwrap();
        (h.flatten().unwrap(), lib)
    }

    fn ext(v: f64) -> BTreeMap<String, Value> {
        [("a".to_string(), Value::Num(v))].into_iter().collect()
    }

    #[test]
    fn repeated_firings_match_execute() {
        let (f, lib) = fan(8);
        for inline_below in [0.0, DEFAULT_INLINE_BELOW] {
            let opts = ExecOptions {
                mode: ExecMode::Greedy { workers: 4 },
                inline_below,
                ..ExecOptions::default()
            };
            let mut session = Session::new(&f, &lib, &opts).unwrap();
            for round in 0..50 {
                let a = f64::from(round);
                let warm = session.run(&ext(a)).unwrap();
                let cold = execute(&f, &lib, &ext(a), &opts).unwrap();
                assert_eq!(warm.outputs, cold.outputs, "round {round}");
                assert_eq!(warm.prints, cold.prints, "round {round}");
                let n = f.graph.task_count();
                assert_eq!(
                    warm.measured_weights(n),
                    cold.measured_weights(n),
                    "round {round}"
                );
            }
        }
    }

    #[test]
    fn per_firing_external_rebinding() {
        let (f, lib) = fan(4);
        let mut session = Session::new(&f, &lib, &ExecOptions::default()).unwrap();
        // sum of (a^2 + i) for i in 0..4 = 4a^2 + 6
        for a in [0.0, 1.0, 3.0, 10.0] {
            let r = session.run(&ext(a)).unwrap();
            assert_eq!(r.outputs["x"], Value::Num(4.0 * a * a + 6.0), "a={a}");
        }
        let err = session.run(&BTreeMap::new()).unwrap_err();
        assert!(
            matches!(err, ExecError::UnboundInput { ref var, .. } if var == "a"),
            "{err}"
        );
        // An unbound firing poisons nothing for the next one.
        let r = session.run(&ext(2.0)).unwrap();
        assert_eq!(r.outputs["x"], Value::Num(22.0));
    }

    #[test]
    fn failed_firing_does_not_poison_the_next() {
        let (f, lib) = fan(8);
        for inline_below in [0.0, DEFAULT_INLINE_BELOW] {
            let opts = ExecOptions {
                mode: ExecMode::Greedy { workers: 4 },
                inline_below,
                inject_panic: Some("w3".into()),
                ..ExecOptions::default()
            };
            let mut session = Session::new(&f, &lib, &opts).unwrap();
            let err = session.run(&ext(2.0)).unwrap_err();
            assert!(
                matches!(err, ExecError::WorkerPanic { ref task, .. } if task == "w3"),
                "inline_below={inline_below}: {err}"
            );
            // Same session object cannot clear inject_panic (options are
            // fixed), so recovery is exercised against a clean session
            // over the same warm design.
            drop(session);
            let clean = ExecOptions {
                inject_panic: None,
                ..opts
            };
            let mut session = Session::new(&f, &lib, &clean).unwrap();
            let r1 = session.run(&ext(2.0)).unwrap();
            let r2 = session.run(&ext(2.0)).unwrap();
            assert_eq!(r1.outputs, r2.outputs);
        }
    }

    #[test]
    fn worker_death_mid_session_leaves_it_usable() {
        let (f, lib) = fan(10);
        // Force the stealable path so a pool thread (not the caller) can
        // grab the victim task at least sometimes; either way the firing
        // must error, never hang, and later firings must still complete.
        let opts = ExecOptions {
            mode: ExecMode::Greedy { workers: 4 },
            inline_below: 0.0,
            inject_worker_death: Some("w5".into()),
            ..ExecOptions::default()
        };
        let mut session = Session::new(&f, &lib, &opts).unwrap();
        let err = session.run(&ext(2.0)).unwrap_err();
        assert!(matches!(err, ExecError::WorkerLost(_)), "{err}");
        drop(session);

        let clean = ExecOptions {
            inject_worker_death: None,
            ..opts
        };
        let mut session = Session::new(&f, &lib, &clean).unwrap();
        let r = session.run(&ext(3.0)).unwrap();
        // sum of (9 + i) for i in 0..10
        assert_eq!(r.outputs["x"], Value::Num(135.0));
    }

    #[test]
    fn traced_session_matches_untraced() {
        let (f, lib) = fan(6);
        let base = ExecOptions {
            mode: ExecMode::Greedy { workers: 2 },
            ..ExecOptions::default()
        };
        let mut plain = Session::new(&f, &lib, &base).unwrap();
        let mut traced = Session::new(
            &f,
            &lib,
            &ExecOptions {
                trace: true,
                ..base
            },
        )
        .unwrap();
        for a in [1.0, 2.0] {
            let p = plain.run(&ext(a)).unwrap();
            let t = traced.run(&ext(a)).unwrap();
            assert_eq!(p.outputs, t.outputs);
            assert!(p.trace.is_none());
            let trace = t.trace.expect("trace recorded");
            let summary = trace.summary();
            assert_eq!(summary.tasks, f.graph.task_count());
            assert_eq!(summary.errors, 0);
            // Default threshold inlines everything in this tiny design.
            assert_eq!(summary.inline_tasks, f.graph.task_count() as u64);
        }
    }

    #[test]
    fn pinned_mode_is_rejected() {
        use banger_machine::{Machine, MachineParams, Topology};
        let (f, lib) = fan(4);
        let m = Machine::new(Topology::fully_connected(2), MachineParams::default());
        let s = banger_sched::list::etf(&f.graph, &m);
        let err = Session::new(
            &f,
            &lib,
            &ExecOptions {
                mode: ExecMode::pinned(s),
                ..ExecOptions::default()
            },
        )
        .err()
        .expect("pinned session must be rejected");
        assert!(matches!(err, ExecError::BadSchedule(_)), "{err}");
    }
}
