#![warn(missing_docs)]

//! # banger-exec — the large-grain parallel runtime
//!
//! Everything up to here *plans*; this crate *runs*. A flattened Banger
//! design plus a [`ProgramLibrary`](banger_calc::ProgramLibrary) of PITS
//! routines executes on real host threads: each task's interpreter run is
//! one large grain, values flow along the dataflow arcs, and precedence is
//! enforced with dependence counting — the shared-memory stand-in for the
//! paper's target message-passing machines (the code generators in
//! `banger-codegen` emit the true message-passing form).
//!
//! Two dispatch modes:
//!
//! * [`ExecMode::Greedy`] — work-conserving pool: any idle worker takes
//!   any ready task (what a dynamic runtime would do);
//! * [`ExecMode::Pinned`] — schedule-driven: worker *i* plays processor
//!   *i* of a [`Schedule`](banger_sched::Schedule) and executes exactly
//!   its placements in predicted start order, including duplicated
//!   copies. This is "run the Gantt chart".
//!
//! Greedy mode runs on per-worker Chase–Lev work-stealing deques
//! (`crossbeam::deque`): completing a task publishes newly ready
//! successors straight into the completing worker's own deque, idle
//! workers steal, and tasks below [`ExecOptions::inline_below`] run on
//! the publishing thread's private stack with no queueing at all.
//! Blocking uses a `parking_lot` mutex/condvar pair behind a Dekker
//! flag; workers never busy-wait and publishers pay no syscall while
//! nobody sleeps.
//!
//! For repeated firings of one design — parameter sweeps, convergence
//! loops — a persistent [`Session`] keeps the worker threads parked and
//! the routing tables, compiled programs, Vm frames, and slab store
//! allocated across runs, so a warm firing pays none of the per-
//! `execute` setup.
//!
//! Setting [`ExecOptions::trace`] makes either mode record a
//! [`Trace`](banger_trace::Trace) of what actually happened — task
//! spans per worker, queue waits, CoW copy counts — which feeds the
//! observed Gantt, the predicted-vs-observed drift report, and the
//! Chrome trace export (see `banger_trace`). Task bodies run under a
//! panic boundary: a panicking body is reported as
//! [`ExecError::WorkerPanic`] with the task's name, never silently
//! swallowed by a thread join.

pub mod runner;
pub mod session;

pub use banger_trace::{DriftReport, Trace, TraceEvent, TraceSummary};
pub use runner::{
    execute, ExecError, ExecMode, ExecOptions, ExecReport, TaskRun, DEFAULT_INLINE_BELOW,
};
pub use session::Session;
