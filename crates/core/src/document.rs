//! The `.bang` project document: one text file holding a complete Banger
//! project — hierarchical design, PITS programs and target machine — so
//! projects can be saved, versioned and exchanged (Banger stored designs
//! as Macintosh documents; this is the headless equivalent).
//!
//! ## Format
//!
//! ```text
//! project <name>
//!
//! machine <topology-spec>        # e.g. hypercube:2, mesh:4x4
//!   speed <f>                    # processor speed
//!   process-startup <f>
//!   msg-startup <f>
//!   rate <f>                     # transmission rate
//!   hop-latency <f>              # optional: switches to cut-through
//! end
//!
//! design
//!   storage <name> <size>
//!   task <name> <weight> [prog <program>]
//!   compound <name>
//!     ... nested design lines ...
//!   end
//!   bind <compound> in|out <label> <inner-node-name>
//!   arc <src> -> <dst> [label <l>] [vol <v>]
//! end
//!
//! begin-program
//! task <Name>
//!   ...PITS source...
//! end
//! end-program
//! ```
//!
//! Node names are unique per level; `arc` without a label uses the
//! storage-name convention of [`HierGraph::add_flow`]. Comments start
//! with `#`.

use banger_calc::ProgramLibrary;
use banger_machine::{Machine, MachineParams, SwitchingMode, Topology};
use banger_taskgraph::{HierGraph, HierNodeId, NodeKind};
use std::collections::BTreeMap;
use std::fmt;

use crate::project::Project;

/// Errors from document parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct DocError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DocError {}

/// Parses a `.bang` document into a [`Project`] (machine included when a
/// `machine` section is present).
pub fn parse_project(text: &str) -> Result<Project, DocError> {
    let mut lines = Numbered::new(text);
    let mut name = String::from("untitled");
    let mut design: Option<HierGraph> = None;
    let mut library = ProgramLibrary::new();
    let mut machine: Option<Machine> = None;

    while let Some((no, line)) = lines.next_content() {
        let mut parts = line.split_whitespace();
        match parts.next().unwrap() {
            "project" => {
                name = parts.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return Err(err(no, "project needs a name"));
                }
            }
            "machine" => {
                let spec = parts
                    .next()
                    .ok_or_else(|| err(no, "machine needs a topology spec"))?;
                let topo =
                    Topology::parse(spec).map_err(|e| err(no, &format!("bad topology: {e}")))?;
                machine = Some(parse_machine_body(&mut lines, topo)?);
            }
            "design" => {
                if design.is_some() {
                    return Err(err(no, "duplicate design section"));
                }
                let mut g = HierGraph::new(name.clone());
                parse_design_body(&mut lines, &mut g)?;
                design = Some(g);
            }
            "begin-program" => {
                let mut src = String::new();
                let start = no;
                loop {
                    match lines.next_raw() {
                        Some((_, l)) if l.trim() == "end-program" => break,
                        Some((_, l)) => {
                            src.push_str(l);
                            src.push('\n');
                        }
                        None => return Err(err(start, "unterminated begin-program")),
                    }
                }
                library
                    .add_source(&src)
                    .map_err(|e| err(start, &format!("bad PITS program: {e}")))?;
            }
            other => return Err(err(no, &format!("unknown directive {other:?}"))),
        }
    }

    let design = design.ok_or_else(|| err(0, "document has no design section"))?;
    let mut project = Project::new(name, design);
    *project.library_mut() = library;
    if let Some(m) = machine {
        project.set_machine(m);
    }
    Ok(project)
}

fn err(line: usize, message: &str) -> DocError {
    DocError {
        line,
        message: message.to_string(),
    }
}

/// Line iterator tracking numbers, skipping comments/blank lines for
/// content reads but preserving everything for program bodies.
struct Numbered<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Numbered<'a> {
    fn new(text: &'a str) -> Self {
        Numbered {
            lines: text.lines().enumerate(),
        }
    }

    fn next_raw(&mut self) -> Option<(usize, &'a str)> {
        self.lines.next().map(|(i, l)| (i + 1, l))
    }

    fn next_content(&mut self) -> Option<(usize, &'a str)> {
        loop {
            let (no, line) = self.next_raw()?;
            let t = line.trim();
            if !t.is_empty() && !t.starts_with('#') {
                return Some((no, t));
            }
        }
    }
}

fn parse_machine_body(lines: &mut Numbered<'_>, topo: Topology) -> Result<Machine, DocError> {
    let mut params = MachineParams::default();
    let mut hop_latency: Option<f64> = None;
    let mut speeds: Vec<(u32, f64)> = Vec::new();
    loop {
        let (no, line) = lines
            .next_content()
            .ok_or_else(|| err(0, "unterminated machine section"))?;
        if line == "end" {
            break;
        }
        let mut parts = line.split_whitespace();
        let key = parts.next().unwrap();
        let val = |parts: &mut std::str::SplitWhitespace<'_>| -> Result<f64, DocError> {
            parts
                .next()
                .ok_or_else(|| err(no, &format!("{key} needs a value")))?
                .parse()
                .map_err(|_| err(no, &format!("{key} value is not a number")))
        };
        match key {
            "speed" => params.processor_speed = val(&mut parts)?,
            "process-startup" => params.process_startup = val(&mut parts)?,
            "msg-startup" => params.msg_startup = val(&mut parts)?,
            "rate" => params.transmission_rate = val(&mut parts)?,
            "hop-latency" => hop_latency = Some(val(&mut parts)?),
            "relative-speed" => {
                // relative-speed <proc> <factor>
                let p: u32 = parts
                    .next()
                    .ok_or_else(|| err(no, "relative-speed needs a processor id"))?
                    .parse()
                    .map_err(|_| err(no, "bad processor id"))?;
                let f = val(&mut parts)?;
                speeds.push((p, f));
            }
            other => return Err(err(no, &format!("unknown machine key {other:?}"))),
        }
    }
    if let Some(h) = hop_latency {
        params.switching = SwitchingMode::CutThrough { hop_latency: h };
    }
    let mut m = Machine::try_new(topo, params).map_err(|e| err(0, &format!("bad machine: {e}")))?;
    for (p, f) in speeds {
        m.set_relative_speed(banger_machine::ProcId(p), f)
            .map_err(|e| err(0, &e))?;
    }
    Ok(m)
}

fn parse_design_body(lines: &mut Numbered<'_>, g: &mut HierGraph) -> Result<(), DocError> {
    let mut names: BTreeMap<String, HierNodeId> = BTreeMap::new();
    loop {
        let (no, line) = lines
            .next_content()
            .ok_or_else(|| err(0, "unterminated design/compound section"))?;
        if line == "end" {
            return Ok(());
        }
        let mut parts = line.split_whitespace();
        match parts.next().unwrap() {
            "storage" => {
                let n = parts
                    .next()
                    .ok_or_else(|| err(no, "storage needs a name"))?;
                let size: f64 = parts
                    .next()
                    .ok_or_else(|| err(no, "storage needs a size"))?
                    .parse()
                    .map_err(|_| err(no, "bad storage size"))?;
                insert_node(&mut names, no, n, g.add_storage(n, size))?;
            }
            "task" => {
                let n = parts.next().ok_or_else(|| err(no, "task needs a name"))?;
                let weight: f64 = parts
                    .next()
                    .ok_or_else(|| err(no, "task needs a weight"))?
                    .parse()
                    .map_err(|_| err(no, "bad task weight"))?;
                let id = match (parts.next(), parts.next()) {
                    (Some("prog"), Some(p)) => g.add_task_with_program(n, weight, p),
                    (None, _) => g.add_task(n, weight),
                    _ => return Err(err(no, "expected `prog <name>` or end of line")),
                };
                insert_node(&mut names, no, n, id)?;
            }
            "compound" => {
                let n = parts
                    .next()
                    .ok_or_else(|| err(no, "compound needs a name"))?;
                let mut inner = HierGraph::new(n.to_string());
                parse_design_body(lines, &mut inner)?;
                insert_node(&mut names, no, n, g.add_compound(n, inner))?;
            }
            "bind" => {
                // bind <compound> in|out <label> <inner-node-name>
                let c = parts
                    .next()
                    .ok_or_else(|| err(no, "bind needs a compound"))?;
                let dir = parts.next().ok_or_else(|| err(no, "bind needs in|out"))?;
                let label = parts.next().ok_or_else(|| err(no, "bind needs a label"))?;
                let inner_name = parts
                    .next()
                    .ok_or_else(|| err(no, "bind needs an inner node name"))?;
                let &cid = names
                    .get(c)
                    .ok_or_else(|| err(no, &format!("unknown compound {c:?}")))?;
                let inner_id = find_inner(g, cid, inner_name)
                    .ok_or_else(|| err(no, &format!("no node {inner_name:?} in {c:?}")))?;
                let r = match dir {
                    "in" => g.bind_input(cid, label, inner_id),
                    "out" => g.bind_output(cid, label, inner_id),
                    _ => return Err(err(no, "bind direction must be `in` or `out`")),
                };
                r.map_err(|e| err(no, &format!("{e}")))?;
            }
            "arc" => {
                // arc <src> -> <dst> [label <l>] [vol <v>]
                let src = parts.next().ok_or_else(|| err(no, "arc needs a source"))?;
                let arrow = parts.next();
                if arrow != Some("->") {
                    return Err(err(no, "expected `->` after the arc source"));
                }
                let dst = parts
                    .next()
                    .ok_or_else(|| err(no, "arc needs a destination"))?;
                let mut label: Option<String> = None;
                let mut vol: f64 = 0.0;
                while let Some(key) = parts.next() {
                    match key {
                        "label" => {
                            label = Some(
                                parts
                                    .next()
                                    .ok_or_else(|| err(no, "label needs a value"))?
                                    .to_string(),
                            )
                        }
                        "vol" => {
                            vol = parts
                                .next()
                                .ok_or_else(|| err(no, "vol needs a value"))?
                                .parse()
                                .map_err(|_| err(no, "bad volume"))?
                        }
                        other => return Err(err(no, &format!("unknown arc key {other:?}"))),
                    }
                }
                let &s = names
                    .get(src)
                    .ok_or_else(|| err(no, &format!("unknown node {src:?}")))?;
                let &d = names
                    .get(dst)
                    .ok_or_else(|| err(no, &format!("unknown node {dst:?}")))?;
                let r = match label {
                    Some(l) => g.add_arc(s, d, l, vol),
                    None => g.add_flow(s, d),
                };
                r.map_err(|e| err(no, &format!("{e}")))?;
            }
            other => return Err(err(no, &format!("unknown design directive {other:?}"))),
        }
    }
}

fn insert_node(
    names: &mut BTreeMap<String, HierNodeId>,
    line: usize,
    name: &str,
    id: HierNodeId,
) -> Result<(), DocError> {
    if names.insert(name.to_string(), id).is_some() {
        return Err(err(line, &format!("duplicate node name {name:?}")));
    }
    Ok(())
}

fn find_inner(g: &HierGraph, compound: HierNodeId, name: &str) -> Option<HierNodeId> {
    match &g.node(compound)?.kind {
        NodeKind::Compound { expansion, .. } => expansion
            .nodes()
            .find(|(_, n)| n.name == name)
            .map(|(id, _)| id),
        _ => None,
    }
}

/// Serialises a project back to document text (round-trips with
/// [`parse_project`] up to comments and formatting).
pub fn print_project(project: &Project) -> String {
    let mut out = String::new();
    out.push_str(&format!("project {}\n\n", project.name()));

    if let Some(m) = project.machine() {
        out.push_str(&format!("machine {}\n", machine_spec(m)));
        let p = m.params();
        out.push_str(&format!("  speed {}\n", p.processor_speed));
        out.push_str(&format!("  process-startup {}\n", p.process_startup));
        out.push_str(&format!("  msg-startup {}\n", p.msg_startup));
        out.push_str(&format!("  rate {}\n", p.transmission_rate));
        if let SwitchingMode::CutThrough { hop_latency } = p.switching {
            out.push_str(&format!("  hop-latency {hop_latency}\n"));
        }
        for proc in m.proc_ids() {
            let s = m.relative_speed(proc);
            if s != 1.0 {
                out.push_str(&format!("  relative-speed {} {}\n", proc.0, s));
            }
        }
        out.push_str("end\n\n");
    }

    out.push_str("design\n");
    print_design_body(project.design(), &mut out, 1);
    out.push_str("end\n");

    for (_, prog) in project.library().iter() {
        out.push_str("\nbegin-program\n");
        out.push_str(&banger_calc::pretty::print_program(prog));
        out.push_str("end-program\n");
    }
    out
}

/// Reconstructs the compact topology spec from a built topology's name
/// (names are `kind-params`, specs are `kind:params`).
fn machine_spec(m: &Machine) -> String {
    let name = m.topology().name();
    match name.split_once('-') {
        Some((kind, params)) => format!("{kind}:{params}"),
        None => name.to_string(),
    }
}

fn print_design_body(g: &HierGraph, out: &mut String, depth: usize) {
    let pad = "  ".repeat(depth);
    for (_, node) in g.nodes() {
        match &node.kind {
            NodeKind::Storage { size } => {
                out.push_str(&format!("{pad}storage {} {}\n", node.name, size));
            }
            NodeKind::Task { weight, program } => match program {
                Some(p) => {
                    out.push_str(&format!("{pad}task {} {} prog {}\n", node.name, weight, p))
                }
                None => out.push_str(&format!("{pad}task {} {}\n", node.name, weight)),
            },
            NodeKind::Compound {
                expansion,
                inputs,
                outputs,
            } => {
                out.push_str(&format!("{pad}compound {}\n", node.name));
                print_design_body(expansion, out, depth + 1);
                out.push_str(&format!("{pad}end\n"));
                for (label, ids) in inputs {
                    for id in ids {
                        let inner = &expansion.node(*id).unwrap().name;
                        out.push_str(&format!("{pad}bind {} in {} {}\n", node.name, label, inner));
                    }
                }
                for (label, ids) in outputs {
                    for id in ids {
                        let inner = &expansion.node(*id).unwrap().name;
                        out.push_str(&format!(
                            "{pad}bind {} out {} {}\n",
                            node.name, label, inner
                        ));
                    }
                }
            }
        }
    }
    for arc in g.arcs() {
        let src = &g.node(arc.src).unwrap().name;
        let dst = &g.node(arc.dst).unwrap().name;
        out.push_str(&format!(
            "{pad}arc {} -> {} label {} vol {}\n",
            src, dst, arc.label, arc.volume
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "\
# A tiny project
project demo

machine hypercube:2
  speed 1
  process-startup 0.5
  msg-startup 1
  rate 4
end

design
  storage v 8
  task split 10 prog Split
  compound Work
    task double 20 prog Double
  end
  bind Work in lo double
  bind Work out d2 double
  task merge 5 prog Merge
  storage result 1
  arc v -> split
  arc split -> Work label lo vol 4
  arc Work -> merge label d2 vol 4
  arc merge -> result
end

begin-program
task Split
  in v
  out lo
begin
  lo := sum(v)
end
end-program

begin-program
task Double
  in lo
  out d2
begin
  d2 := lo * 2
end
end-program

begin-program
task Merge
  in d2
  out result
begin
  result := d2 + 1
end
end-program
";

    #[test]
    fn parses_and_executes() {
        let mut p = parse_project(DOC).unwrap();
        assert_eq!(p.name(), "demo");
        assert_eq!(p.library().len(), 3);
        assert!(p.machine().is_some());
        assert_eq!(p.machine().unwrap().processors(), 4);
        let f = p.flatten().unwrap();
        assert_eq!(f.graph.task_count(), 3);
        let report = p
            .run(
                &[(
                    "v".to_string(),
                    banger_calc::Value::array(vec![1.0, 2.0, 3.0]),
                )]
                .into_iter()
                .collect(),
            )
            .unwrap();
        // sum=6, doubled=12, +1=13
        assert_eq!(report.outputs["result"], banger_calc::Value::Num(13.0));
    }

    #[test]
    fn round_trips() {
        let p = parse_project(DOC).unwrap();
        let printed = print_project(&p);
        let p2 = parse_project(&printed).unwrap_or_else(|e| panic!("{e}\n---\n{printed}"));
        // Designs and libraries compare structurally; machines via params.
        assert_eq!(p.design(), p2.design());
        assert_eq!(p.library().len(), p2.library().len());
        assert_eq!(p.machine().unwrap(), p2.machine().unwrap());
        // And printing again is a fixpoint.
        assert_eq!(printed, print_project(&p2));
    }

    #[test]
    fn machine_extras_round_trip() {
        let doc = "\
project m
machine mesh:2x2
  speed 2
  rate 8
  hop-latency 0.25
  relative-speed 1 2.5
end
design
  task only 5
end
";
        let p = parse_project(doc).unwrap();
        let m = p.machine().unwrap();
        assert_eq!(
            m.params().switching,
            SwitchingMode::CutThrough { hop_latency: 0.25 }
        );
        assert_eq!(m.relative_speed(banger_machine::ProcId(1)), 2.5);
        let p2 = parse_project(&print_project(&p)).unwrap();
        assert_eq!(m, p2.machine().unwrap());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        for (doc, needle) in [
            ("project\n", "needs a name"),
            ("project x\nfrobnicate\n", "unknown directive"),
            ("project x\ndesign\n  task t\nend\n", "needs a weight"),
            (
                "project x\ndesign\n  storage s 1\n  storage s 2\nend\n",
                "duplicate node",
            ),
            ("project x\ndesign\n  arc a -> b\nend\n", "unknown node"),
            ("project x\ndesign\n  task t 1\n", "unterminated"),
            ("project x\nmachine bogus:9\nend\n", "bad topology"),
            (
                "project x\nmachine ring:4\n  warp 9\nend\ndesign\nend\n",
                "unknown machine key",
            ),
            (
                "project x\nbegin-program\ntask T begin end\n",
                "unterminated begin-program",
            ),
            (
                "project x\nbegin-program\nnot pits\nend-program\n",
                "bad PITS",
            ),
        ] {
            let e = parse_project(doc).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "{doc:?}: got {e}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn missing_design_rejected() {
        let e = parse_project("project x\n").unwrap_err();
        assert!(e.to_string().contains("no design"));
    }

    #[test]
    fn lu_project_round_trips_through_document() {
        use banger_machine::{MachineParams, Topology};
        let p = crate::figures::lu_project(
            3,
            Machine::new(Topology::hypercube(2), MachineParams::default()),
        );
        let printed = print_project(&p);
        let mut p2 = parse_project(&printed).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(p.design(), p2.design());
        // The reloaded project still solves Ax=b.
        let (a, b) = crate::lu::test_system(3);
        let report = p2.run(&crate::lu::lu_inputs(&a, &b)).unwrap();
        let want = crate::lu::solve_reference(&a, &b);
        let got = report.outputs["x"].as_array("x").unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
    }
}
