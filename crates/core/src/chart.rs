//! ASCII charts: the speedup-prediction display of Figure 3 and generic
//! labelled bar charts for the comparison tables.

use std::fmt::Write as _;

/// One point of a speedup curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupPoint {
    /// Processor count.
    pub processors: usize,
    /// Predicted (or measured) speedup.
    pub speedup: f64,
}

/// Renders a speedup chart: one bar per processor count, with the ideal
/// (linear) speedup marked by `|` for contrast.
pub fn speedup_chart(title: &str, points: &[SpeedupPoint], width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if points.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let max_axis = points
        .iter()
        .map(|p| p.processors as f64)
        .fold(1.0f64, f64::max);
    let scale = width as f64 / max_axis;
    for p in points {
        let bars = ((p.speedup * scale).round() as usize).min(width);
        let ideal = ((p.processors as f64 * scale).round() as usize).min(width);
        let mut row: Vec<char> = vec![' '; width + 1];
        for c in row.iter_mut().take(bars) {
            *c = '#';
        }
        if ideal < row.len() {
            row[ideal] = '|';
        }
        let _ = writeln!(
            out,
            "{:>4} procs {} {:.2}x",
            p.processors,
            row.iter().collect::<String>(),
            p.speedup
        );
    }
    let _ = writeln!(out, "           ('|' marks ideal linear speedup)");
    out
}

/// A generic horizontal bar chart of labelled values (used for heuristic
/// comparisons: label = heuristic, value = makespan).
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if rows.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let maxv = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    for (label, v) in rows {
        let bars = if maxv > 0.0 {
            ((v / maxv) * width as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(
            out,
            "{label:>label_w$} {} {v:.3}",
            "#".repeat(bars.max(if *v > 0.0 { 1 } else { 0 }))
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_chart_shape() {
        let pts = vec![
            SpeedupPoint {
                processors: 2,
                speedup: 1.7,
            },
            SpeedupPoint {
                processors: 4,
                speedup: 2.9,
            },
            SpeedupPoint {
                processors: 8,
                speedup: 4.2,
            },
        ];
        let text = speedup_chart("Predicted speedup (LU design)", &pts, 40);
        assert!(text.contains("Predicted speedup"));
        assert!(text.contains("2 procs"));
        assert!(text.contains("8 procs"));
        assert!(text.contains("4.20x"));
        assert!(text.contains('|'));
        // Longer bars for higher speedups.
        let bars = |line: &str| line.matches('#').count();
        let lines: Vec<&str> = text.lines().collect();
        assert!(bars(lines[1]) < bars(lines[2]));
        assert!(bars(lines[2]) < bars(lines[3]));
    }

    #[test]
    fn bar_chart_shape() {
        let rows = vec![
            ("serial".to_string(), 100.0),
            ("ETF".to_string(), 40.0),
            ("MH".to_string(), 35.0),
        ];
        let text = bar_chart("Makespan by heuristic", &rows, 30);
        assert!(text.contains("serial"));
        assert!(text.contains("35.000"));
        let serial_bars = text.lines().nth(1).unwrap().matches('#').count();
        let mh_bars = text.lines().nth(3).unwrap().matches('#').count();
        assert!(serial_bars > mh_bars);
    }

    #[test]
    fn empty_inputs() {
        assert!(speedup_chart("t", &[], 10).contains("no data"));
        assert!(bar_chart("t", &[], 10).contains("no data"));
    }
}
