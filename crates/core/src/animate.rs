//! ASCII animation of a simulated run — the headless form of the paper's
//! "instant feedback to the user ... especially through graphical displays
//! and animations".
//!
//! The renderer samples the simulated timeline at a fixed number of
//! frames; each frame shows what every processor is doing (running a task
//! or idle) and which messages are in flight.

use crate::project::short_name;
use banger_machine::ProcId;
use banger_sim::SimResult;
use banger_taskgraph::TaskGraph;
use std::fmt::Write as _;

/// Animation options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnimateOptions {
    /// Number of frames to render across the makespan.
    pub frames: usize,
    /// Maximum in-flight messages listed per frame.
    pub max_msgs: usize,
}

impl Default for AnimateOptions {
    fn default() -> Self {
        AnimateOptions {
            frames: 12,
            max_msgs: 4,
        }
    }
}

/// Renders the simulated run as a frame-by-frame text animation.
pub fn animate(
    g: &TaskGraph,
    processors: usize,
    result: &SimResult,
    options: AnimateOptions,
) -> String {
    let makespan = result.achieved_makespan();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Animation — {} ({} frames over {:.2} time units)",
        result.achieved.heuristic(),
        options.frames,
        makespan
    );
    if makespan <= 0.0 || options.frames == 0 {
        out.push_str("(nothing to animate)\n");
        return out;
    }
    // Column width: longest short task name, bounded.
    let width = g
        .tasks()
        .map(|(_, t)| short_name(&t.name).len())
        .max()
        .unwrap_or(4)
        .clamp(4, 12);

    for f in 0..options.frames {
        // Sample mid-frame so instant events are attributed sensibly.
        let t = makespan * (f as f64 + 0.5) / options.frames as f64;
        let _ = write!(out, "t={t:>8.2} |");
        for p in 0..processors {
            let running = result
                .achieved
                .on_processor(ProcId(p as u32))
                .into_iter()
                .find(|pl| pl.start <= t && t < pl.finish)
                .map(|pl| {
                    let mut n = short_name(&g.task(pl.task).name);
                    if !pl.primary {
                        n.push('\'');
                    }
                    n
                });
            match running {
                Some(name) => {
                    let _ = write!(out, " {name:<width$}");
                }
                None => {
                    let _ = write!(out, " {:<width$}", "·");
                }
            }
        }
        // In-flight messages.
        let mut flights: Vec<String> = result
            .messages
            .iter()
            .filter(|m| m.inject <= t && t < m.arrival)
            .map(|m| format!("{}→{}", m.src, m.dst))
            .collect();
        let extra = flights.len().saturating_sub(options.max_msgs);
        flights.truncate(options.max_msgs);
        if !flights.is_empty() {
            let _ = write!(out, " |✉ {}", flights.join(" "));
            if extra > 0 {
                let _ = write!(out, " (+{extra})");
            }
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "done: {} task runs, {} messages, makespan {:.2}",
        result.achieved.placements().len(),
        result.messages.len(),
        makespan
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_machine::{Machine, MachineParams, Topology};
    use banger_sim::{simulate, SimOptions};
    use banger_taskgraph::generators;

    fn simulate_lu() -> (TaskGraph, Machine, SimResult) {
        let g = generators::lu_hierarchical(4).flatten().unwrap().graph;
        let m = Machine::new(Topology::hypercube(2), crate::figures::figure3_params());
        let s = banger_sched::mh::mh(&g, &m);
        let r = simulate(&g, &m, &s, SimOptions::default()).unwrap();
        (g, m, r)
    }

    #[test]
    fn frames_cover_the_run() {
        let (g, m, r) = simulate_lu();
        let text = animate(&g, m.processors(), &r, AnimateOptions::default());
        assert_eq!(
            text.lines().count(),
            1 + 12 + 1,
            "header + frames + footer:\n{text}"
        );
        assert!(text.contains("fan1"), "{text}");
        assert!(text.contains("t="));
        assert!(text.contains("done:"));
    }

    #[test]
    fn messages_appear_when_cross_processor() {
        let (g, m, r) = simulate_lu();
        if r.messages.is_empty() {
            return; // single-processor schedule: nothing to show
        }
        let text = animate(
            &g,
            m.processors(),
            &r,
            AnimateOptions {
                frames: 200,
                max_msgs: 8,
            },
        );
        assert!(text.contains('✉'), "{text}");
    }

    #[test]
    fn idle_marker_shown() {
        let (g, m, r) = simulate_lu();
        let text = animate(&g, m.processors(), &r, AnimateOptions::default());
        assert!(text.contains('·'), "some processor must idle:\n{text}");
    }

    #[test]
    fn empty_run() {
        let g = TaskGraph::new("empty");
        let m = Machine::new(Topology::single(), MachineParams::default());
        let s = banger_sched::list::serial(&g, &m);
        let r = simulate(&g, &m, &s, SimOptions::default()).unwrap();
        let text = animate(&g, 1, &r, AnimateOptions::default());
        assert!(text.contains("nothing to animate"));
    }

    #[test]
    fn message_records_are_consistent() {
        let (_, m, r) = simulate_lu();
        for rec in &r.messages {
            assert!(rec.arrival > rec.inject);
            assert!(rec.src != rec.dst);
            assert!(rec.volume > 0.0);
            assert!(rec.src.index() < m.processors());
            assert!(rec.dst.index() < m.processors());
            // Arrival respects the machine's analytic minimum.
            let min = rec.inject + m.comm_time(rec.src, rec.dst, rec.volume);
            assert!(rec.arrival + 1e-9 >= min);
        }
        assert_eq!(r.messages.len() as u64, r.stats.messages);
    }
}
