//! Executable PITS programs for the paper's LU decomposition design.
//!
//! [`banger_taskgraph::generators::lu_hierarchical`] builds the Figure 1
//! *structure*; this module generates the matching PITS *routines* so the
//! design actually solves `Ax = b` when executed (by the threaded runtime,
//! or via generated code).
//!
//! Message protocol: every matrix-carrying arc transports the full `n x n`
//! working matrix, row-major, 1-based `M[(i-1)*n + j]` indexing. Each
//! update task grafts its freshly updated column onto the accumulated
//! pivot-chain matrix, so the final update emits the complete LU factors.
//! (The arc *volumes* in the design model only the necessary column/vector
//! traffic — a deliberate, documented simplification.)

use banger_calc::{ProgramLibrary, Value};
use std::fmt::Write as _;

/// Generates the PITS program library for an `n x n` LU design
/// (`2 <= n <= 9`; larger systems would need multi-digit task names the
/// Figure 1 naming scheme cannot express).
pub fn lu_program_library(n: usize) -> ProgramLibrary {
    assert!(
        (2..=9).contains(&n),
        "LU program naming supports n in 2..=9"
    );
    let mut lib = ProgramLibrary::new();
    let idx = |i: &str, j: &str| format!("({i} - 1) * {n} + {j}");

    // --- fan{k}: compute multipliers for pivot column k -----------------
    for k in 1..n {
        let input = if k == 1 {
            "A".to_string()
        } else {
            format!("col{k}")
        };
        let mut src = String::new();
        let _ = writeln!(src, "task fan{k}");
        let _ = writeln!(src, "  in {input}");
        let _ = writeln!(src, "  out l{k}");
        let _ = writeln!(src, "  local M, i");
        let _ = writeln!(src, "begin");
        let _ = writeln!(src, "  M := {input}");
        let _ = writeln!(src, "  for i := {} to {n} do", k + 1);
        let _ = writeln!(
            src,
            "    M[{0}] := M[{0}] / M[{1}]",
            idx("i", &k.to_string()),
            idx(&k.to_string(), &k.to_string())
        );
        let _ = writeln!(src, "  end");
        let _ = writeln!(src, "  l{k} := M");
        let _ = writeln!(src, "end");
        lib.add_source(&src).expect("generated fan program parses");
    }

    // --- fl{j}{k}: update column j at stage k ----------------------------
    for k in 1..n {
        for j in k + 1..=n {
            let out = if k == n - 1 {
                "LU".to_string()
            } else if j == k + 1 {
                format!("col{}", k + 1)
            } else {
                format!("a{j}{}", k + 1)
            };
            let mut src = String::new();
            let _ = writeln!(src, "task fl{j}{k}");
            if k == 1 {
                let _ = writeln!(src, "  in l{k}");
            } else {
                let _ = writeln!(src, "  in l{k}, a{j}{k}");
            }
            let _ = writeln!(src, "  out {out}");
            let _ = writeln!(src, "  local M, i");
            let _ = writeln!(src, "begin");
            let _ = writeln!(src, "  M := l{k}");
            if k > 1 {
                // graft column j (updated through stage k-1) onto the
                // accumulated pivot-chain matrix
                let _ = writeln!(src, "  for i := 1 to {n} do");
                let _ = writeln!(src, "    M[{0}] := a{j}{k}[{0}]", idx("i", &j.to_string()));
                let _ = writeln!(src, "  end");
            }
            let _ = writeln!(src, "  for i := {} to {n} do", k + 1);
            let _ = writeln!(
                src,
                "    M[{0}] := M[{0}] - M[{1}] * M[{2}]",
                idx("i", &j.to_string()),
                idx("i", &k.to_string()),
                idx(&k.to_string(), &j.to_string())
            );
            let _ = writeln!(src, "  end");
            let _ = writeln!(src, "  {out} := M");
            let _ = writeln!(src, "end");
            lib.add_source(&src).expect("generated fl program parses");
        }
    }

    // --- fwd{j}: forward substitution step -------------------------------
    for j in 1..=n {
        let input = if j == 1 {
            "b".to_string()
        } else {
            format!("y{}", j - 1)
        };
        let out = if j == n {
            format!("z{n}")
        } else {
            format!("y{j}")
        };
        let mut src = String::new();
        let _ = writeln!(src, "task fwd{j}");
        let _ = writeln!(src, "  in LU, {input}");
        let _ = writeln!(src, "  out {out}");
        let _ = writeln!(src, "  local c, t");
        let _ = writeln!(src, "begin");
        let _ = writeln!(src, "  c := {input}");
        if j > 1 {
            let _ = writeln!(src, "  for t := 1 to {} do", j - 1);
            let _ = writeln!(
                src,
                "    c[{j}] := c[{j}] - LU[{0}] * c[t]",
                idx(&j.to_string(), "t")
            );
            let _ = writeln!(src, "  end");
        }
        let _ = writeln!(src, "  {out} := c");
        let _ = writeln!(src, "end");
        lib.add_source(&src).expect("generated fwd program parses");
    }

    // --- bck{j}: back substitution step -----------------------------------
    for j in (1..=n).rev() {
        let out = if j == 1 {
            "x".to_string()
        } else {
            format!("z{}", j - 1)
        };
        let mut src = String::new();
        let _ = writeln!(src, "task bck{j}");
        let _ = writeln!(src, "  in LU, z{j}");
        let _ = writeln!(src, "  out {out}");
        let _ = writeln!(src, "  local c, t");
        let _ = writeln!(src, "begin");
        let _ = writeln!(src, "  c := z{j}");
        if j < n {
            let _ = writeln!(src, "  for t := {} to {n} do", j + 1);
            let _ = writeln!(
                src,
                "    c[{j}] := c[{j}] - LU[{0}] * c[t]",
                idx(&j.to_string(), "t")
            );
            let _ = writeln!(src, "  end");
        }
        let _ = writeln!(
            src,
            "  c[{j}] := c[{j}] / LU[{0}]",
            idx(&j.to_string(), &j.to_string())
        );
        let _ = writeln!(src, "  {out} := c");
        let _ = writeln!(src, "end");
        lib.add_source(&src).expect("generated bck program parses");
    }

    lib
}

/// Reference dense solver (partial-pivot-free LU, same as the design) for
/// verifying executed results. `a` is row-major `n x n`.
pub fn solve_reference(a: &[f64], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    assert_eq!(a.len(), n * n);
    let mut m = a.to_vec();
    // factor (Doolittle, unit lower)
    for k in 0..n - 1 {
        for i in k + 1..n {
            m[i * n + k] /= m[k * n + k];
            let lik = m[i * n + k];
            for j in k + 1..n {
                m[i * n + j] -= lik * m[k * n + j];
            }
        }
    }
    // forward
    let mut y = b.to_vec();
    for i in 1..n {
        for j in 0..i {
            y[i] -= m[i * n + j] * y[j];
        }
    }
    // back
    let mut x = y;
    for i in (0..n).rev() {
        for j in i + 1..n {
            x[i] -= m[i * n + j] * x[j];
        }
        x[i] /= m[i * n + i];
    }
    x
}

/// A well-conditioned test matrix: diagonally dominant with deterministic
/// off-diagonal pattern.
pub fn test_system(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = if i == j {
                (n + 2) as f64
            } else {
                1.0 + ((i * 3 + j * 7) % 5) as f64 * 0.25
            };
        }
    }
    let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
    (a, b)
}

/// Convenience: the external-input map for executing the LU design.
pub fn lu_inputs(a: &[f64], b: &[f64]) -> std::collections::BTreeMap<String, Value> {
    [
        ("A".to_string(), Value::array(a.to_vec())),
        ("b".to_string(), Value::array(b.to_vec())),
    ]
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_calc::interp;
    use banger_exec::{execute, ExecOptions};
    use banger_taskgraph::generators;

    #[test]
    fn library_covers_every_design_task() {
        for n in 2..=5 {
            let lib = lu_program_library(n);
            let f = generators::lu_hierarchical(n).flatten().unwrap();
            for (_, task) in f.graph.tasks() {
                let prog = task.program.as_deref().unwrap();
                assert!(lib.get(prog).is_some(), "n={n}: missing program {prog}");
            }
        }
    }

    #[test]
    fn fan1_computes_multipliers() {
        let lib = lu_program_library(3);
        let (a, _) = test_system(3);
        let out = interp::run(
            lib.get("fan1").unwrap(),
            &[("A".to_string(), Value::array(a.clone()))]
                .into_iter()
                .collect(),
        )
        .unwrap();
        let m = out.outputs["l1"].as_array("l1").unwrap();
        assert!((m[3] - a[3] / a[0]).abs() < 1e-12); // l21
        assert!((m[6] - a[6] / a[0]).abs() < 1e-12); // l31
        assert_eq!(m[0], a[0]); // pivot untouched
    }

    #[test]
    fn reference_solver_is_correct() {
        let (a, b) = test_system(4);
        let x = solve_reference(&a, &b);
        // check residual
        for i in 0..4 {
            let mut r = -b[i];
            for j in 0..4 {
                r += a[i * 4 + j] * x[j];
            }
            assert!(r.abs() < 1e-9, "row {i} residual {r}");
        }
    }

    #[test]
    fn design_solves_ax_equals_b_end_to_end() {
        for n in 2..=5 {
            let design = generators::lu_hierarchical(n).flatten().unwrap();
            let lib = lu_program_library(n);
            let (a, b) = test_system(n);
            let report = execute(&design, &lib, &lu_inputs(&a, &b), &ExecOptions::default())
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
            let got = report.outputs["x"].as_array("x").unwrap();
            let want = solve_reference(&a, &b);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() < 1e-9, "n={n} x[{i}]: {g} vs {w}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "n in 2..=9")]
    fn rejects_large_n() {
        lu_program_library(10);
    }
}
