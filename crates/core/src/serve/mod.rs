//! `banger serve` — a persistent project daemon with content-hashed
//! caches.
//!
//! The paper's non-programmer iterates: edit a design, check it,
//! reschedule, run. Until now every `banger` invocation re-parsed,
//! re-linted, re-compiled and re-scheduled from scratch. This module
//! keeps all of that *resident*, SDFG-style: a long-lived process holds
//! a concurrent [`ProjectStore`] keyed by canonical `.bang` path, with a
//! cache at every pipeline level, and serves check / schedule / run /
//! trace / optimize requests from many simultaneous clients over a
//! Unix-domain socket.
//!
//! ## Cache levels
//!
//! Every request re-reads the project file and rehashes its bytes
//! (FNV-1a 64; no inotify dependency — a stat+read per request is the
//! invalidation probe). On a hash match the warm entry is reused; on a
//! mismatch the entry is rebuilt from the new source and every derived
//! cache below it is discarded.
//!
//! | level | cache | key | invalidated by |
//! |---|---|---|---|
//! | source bytes | content hash | canonical path | file rewrite |
//! | parse | [`Project`](crate::Project) (design + library + machine) | source hash | hash change |
//! | diagnose | `Project::diagnose` memo | source hash | hash change |
//! | compile | `Arc<CompiledProgram>` in the `ProgramLibrary` | program name | hash change |
//! | router + workers | [`Session`](banger_exec::Session) (parked pool, slab store) | source hash | hash change, worker loss |
//! | schedule | rendered schedule + Gantt | (design hash, machine spec, heuristic) | hash change |
//!
//! ## Protocol
//!
//! Length-prefixed JSON (serde-free, same hand-rolled style as the CLI's
//! JSON output): each frame is a big-endian `u32` byte length followed
//! by one UTF-8 JSON object. See [`protocol`] for the request and
//! response schemas. A connection carries any number of request frames;
//! the server answers each with exactly one response frame.
//!
//! ## Fault containment
//!
//! Each request is handled under [`std::panic::catch_unwind`]: a panic
//! anywhere in the pipeline produces a structured error response, the
//! affected project entry is poisoned-and-rebuilt (evicted, so the next
//! request reconstructs it from source), and the daemon keeps serving —
//! mirroring the per-task panic attribution inside the executor.
//!
//! ## Quick start
//!
//! ```text
//! banger serve --socket /tmp/banger.sock &
//! banger --connect /tmp/banger.sock check  examples/projects/lu3.bang
//! banger --connect /tmp/banger.sock gantt  examples/projects/lu3.bang -H ETF
//! banger --connect /tmp/banger.sock run    examples/projects/lu3.bang -i A=[..] -i b=[..]
//! banger --connect /tmp/banger.sock shutdown
//! ```
//!
//! Client mode falls back to plain local execution when no daemon
//! answers on the socket, so `--connect` is always safe to add.

pub mod client;
pub mod json;
pub mod ops;
pub mod protocol;
pub mod server;
pub mod store;

pub use client::Client;
pub use protocol::{Request, Response};
pub use server::Server;
pub use store::{content_hash, CacheStats, ProjectStore};

use std::path::PathBuf;

/// The socket path used when `--socket` is not given: `$BANGER_SOCKET`,
/// falling back to `banger.sock` in the system temp directory.
pub fn default_socket_path() -> PathBuf {
    match std::env::var_os("BANGER_SOCKET") {
        Some(p) if !p.is_empty() => PathBuf::from(p),
        _ => std::env::temp_dir().join("banger.sock"),
    }
}
