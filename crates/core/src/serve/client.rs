//! The client side of the protocol: connect, send a request frame,
//! read the response frame.

use super::protocol::{read_frame, write_frame, Request, Response};
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One connection to a daemon. A client may issue any number of
/// requests over its lifetime; requests on one connection are
/// sequential (the protocol has no multiplexing — open a second client
/// for concurrency).
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a daemon's socket. A connection failure is the
    /// CLI's cue to fall back to local execution.
    pub fn connect(socket_path: &Path) -> io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(socket_path)?,
        })
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, String> {
        write_frame(&mut self.stream, req.to_json().as_bytes())
            .map_err(|e| format!("send failed: {e}"))?;
        let frame = read_frame(&mut self.stream)
            .map_err(|e| format!("receive failed: {e}"))?
            .ok_or("daemon closed the connection without answering")?;
        let text =
            std::str::from_utf8(&frame).map_err(|_| "response frame is not UTF-8".to_string())?;
        Response::from_json(text).map_err(|e| format!("bad response: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::Server;
    use std::sync::atomic::Ordering;

    #[test]
    fn round_trip_through_a_real_socket() {
        let path =
            std::env::temp_dir().join(format!("banger-client-test-{}.sock", std::process::id()));
        std::fs::remove_file(&path).ok();
        let server = Server::bind(&path).unwrap();
        let shutdown = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.serve());

        let mut client = Client::connect(&path).unwrap();
        let resp = client.request(&Request::new("ping")).unwrap();
        assert!(resp.ok);
        assert_eq!(resp.output, "pong\n");

        // Two requests on one connection.
        let resp = client.request(&Request::new("stats")).unwrap();
        assert!(resp.output.starts_with("requests "), "{}", resp.output);

        let resp = client.request(&Request::new("shutdown")).unwrap();
        assert!(resp.ok);
        assert!(shutdown.load(Ordering::SeqCst));
        handle.join().unwrap().unwrap();
        assert!(!path.exists());
    }
}
