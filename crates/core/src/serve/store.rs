//! The concurrent project store: content-hashed cache entries keyed by
//! canonical path.
//!
//! One [`ProjectStore`] lives for the daemon's whole life. Each `.bang`
//! file gets one [`Entry`] slot; the slot survives evictions so that
//! per-path locks stay stable while the *state* inside (parsed
//! [`Project`], memoized check renders, schedules, the warm
//! [`Session`]) is rebuilt whenever the source bytes hash differently.
//!
//! Locking is two-level: a brief store-wide lock to find or create the
//! slot, then a per-entry lock held for the duration of one request
//! against that project. Requests against *different* projects never
//! contend. The vendored `parking_lot` mutex is used deliberately — it
//! has no lock poisoning, so a panicking request (contained by the
//! server's `catch_unwind`) cannot wedge an entry; the poisoned *cache
//! state* is discarded explicitly via [`ProjectStore::evict`] instead.

use crate::document::parse_project;
use crate::project::Project;
use banger_exec::Session;
use banger_sched::Schedule;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// FNV-1a 64-bit over raw bytes: the content hash behind every cache
/// level. Dependency-free and stable across runs (unlike `DefaultHasher`,
/// which is randomly seeded per process).
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Key for one cached schedule: (design content hash, machine spec,
/// heuristic). The machine spec string is [`Machine::describe`]'s
/// one-liner — two designs sharing source bytes but differing machines
/// can never collide because the machine is *part of* the hashed source;
/// the spec stays in the key as defense in depth and documentation.
///
/// [`Machine::describe`]: banger_machine::Machine::describe
pub type SchedKey = (u64, String, String);

/// A schedule computed once and replayed from cache.
#[derive(Clone)]
pub struct CachedSchedule {
    /// The schedule itself (reused by pinned/traced runs).
    pub schedule: Schedule,
    /// The exact stdout the CLI's `gantt` command would print.
    pub output: String,
}

/// Everything derived from one source snapshot. Dropped wholesale on
/// hash change or eviction — there is no partial invalidation.
pub struct EntryState {
    /// Hash of the source bytes this state was built from (the design
    /// component of every [`SchedKey`]).
    pub source_hash: u64,
    /// The parsed project (parse + diagnose + compile caches live
    /// inside it).
    pub project: Project,
    /// Machine spec line for schedule keys; empty if no machine.
    pub machine_spec: String,
    /// Rendered `check` output per format (`text` / `json`), plus the
    /// exit code the CLI would use.
    pub checks: HashMap<String, (String, i32)>,
    /// Cached schedules + rendered Gantt output.
    pub schedules: HashMap<SchedKey, CachedSchedule>,
    /// Warm executor session (parked worker pool, routing tables, slab
    /// store); opened lazily by the first `run` request.
    pub session: Option<Session>,
}

/// One per-path slot. `state: None` means cold: never built, evicted,
/// or poisoned by a panicking request.
pub struct Entry {
    /// Hash of the source bytes `state` was built from.
    pub source_hash: u64,
    /// The derived caches, absent when cold.
    pub state: Option<EntryState>,
}

impl Entry {
    /// Brings the entry in sync with the just-read source snapshot.
    /// Returns `(state, warm)` where `warm` is false when this call
    /// (re)built the project from source. Parse failures leave the
    /// entry cold so the next request retries.
    pub fn ensure(
        &mut self,
        source: &str,
        hash: u64,
        counters: &Counters,
    ) -> Result<(&mut EntryState, bool), String> {
        let stale = self.state.is_some() && self.source_hash != hash;
        if stale {
            counters.rebuilds.fetch_add(1, Ordering::Relaxed);
            self.state = None;
        }
        if let Some(ref mut state) = self.state {
            counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((state, true));
        }
        counters.misses.fetch_add(1, Ordering::Relaxed);
        let mut project = parse_project(source).map_err(|e| e.to_string())?;
        // Warm the parse-adjacent caches up front: flatten feeds every
        // downstream consumer and diagnose memoizes inside the Project.
        let machine_spec = project.machine().map(|m| m.describe()).unwrap_or_default();
        project.diagnose();
        self.source_hash = hash;
        self.state = Some(EntryState {
            source_hash: hash,
            project,
            machine_spec,
            checks: HashMap::new(),
            schedules: HashMap::new(),
            session: None,
        });
        let state = self
            .state
            .as_mut()
            .ok_or("entry state vanished during rebuild")?;
        Ok((state, false))
    }
}

/// Monotonic daemon-lifetime counters, readable without any lock.
#[derive(Default)]
pub struct Counters {
    /// Requests dispatched (all verbs).
    pub requests: AtomicU64,
    /// Requests answered from a warm entry.
    pub hits: AtomicU64,
    /// Cold builds (first sight of a path, or rebuild after eviction).
    pub misses: AtomicU64,
    /// Rebuilds forced by a source-hash change (also counted in misses).
    pub rebuilds: AtomicU64,
    /// Explicit evictions (`evict` requests and panic poisoning).
    pub evictions: AtomicU64,
    /// Requests that panicked and were contained.
    pub panics: AtomicU64,
}

/// A point-in-time snapshot of [`Counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests dispatched (all verbs).
    pub requests: u64,
    /// Requests answered from a warm entry.
    pub hits: u64,
    /// Cold builds (first sight of a path, or rebuild after eviction).
    pub misses: u64,
    /// Rebuilds forced by a source-hash change (also counted in misses).
    pub rebuilds: u64,
    /// Explicit evictions (`evict` requests and panic poisoning).
    pub evictions: u64,
    /// Requests that panicked and were contained.
    pub panics: u64,
}

impl CacheStats {
    /// Renders the snapshot as the `stats` command's output.
    pub fn render(&self) -> String {
        format!(
            "requests {}  hits {}  misses {}  rebuilds {}  evictions {}  panics {}\n",
            self.requests, self.hits, self.misses, self.rebuilds, self.evictions, self.panics
        )
    }
}

/// The daemon's shared state: per-path entries plus lifetime counters.
pub struct ProjectStore {
    entries: Mutex<HashMap<PathBuf, Arc<Mutex<Entry>>>>,
    /// Lifetime counters (shared with request handlers).
    pub counters: Counters,
}

impl Default for ProjectStore {
    fn default() -> Self {
        ProjectStore::new()
    }
}

impl ProjectStore {
    /// A fresh, empty store.
    pub fn new() -> Self {
        ProjectStore {
            entries: Mutex::new(HashMap::new()),
            counters: Counters::default(),
        }
    }

    /// Resolves a request path to its canonical form — the store key.
    /// Canonicalization doubles as the per-request `stat` probe.
    pub fn canonical(&self, path: &str) -> Result<PathBuf, String> {
        Path::new(path)
            .canonicalize()
            .map_err(|e| format!("cannot read {path}: {e}"))
    }

    /// Reads the current source snapshot and returns the entry slot for
    /// it: `(slot, canonical path, source text, content hash)`. The
    /// read-and-rehash *is* the invalidation probe — there is no file
    /// watcher; a stale entry is detected the moment the next request
    /// arrives.
    #[allow(clippy::type_complexity)]
    pub fn lookup(&self, path: &str) -> Result<(Arc<Mutex<Entry>>, PathBuf, String, u64), String> {
        let canon = self.canonical(path)?;
        let source = std::fs::read_to_string(&canon)
            .map_err(|e| format!("cannot read {}: {e}", canon.display()))?;
        let hash = content_hash(source.as_bytes());
        let slot = {
            let mut map = self.entries.lock();
            Arc::clone(map.entry(canon.clone()).or_insert_with(|| {
                Arc::new(Mutex::new(Entry {
                    source_hash: 0,
                    state: None,
                }))
            }))
        };
        Ok((slot, canon, source, hash))
    }

    /// Discards the derived state for a path (the slot itself remains).
    /// Returns whether anything warm was actually dropped. Used by the
    /// `evict` verb, by panic poisoning, and by the bench to force cold
    /// measurements.
    pub fn evict(&self, path: &str) -> bool {
        let canon = match self.canonical(path) {
            Ok(c) => c,
            Err(_) => PathBuf::from(path),
        };
        let slot = {
            let map = self.entries.lock();
            map.get(&canon).cloned()
        };
        match slot {
            Some(slot) => {
                let mut entry = slot.lock();
                let was_warm = entry.state.is_some();
                entry.state = None;
                if was_warm {
                    self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                }
                was_warm
            }
            None => false,
        }
    }

    /// Snapshots the lifetime counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            rebuilds: self.counters.rebuilds.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            panics: self.counters.panics.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    const DESIGN: &str = "\
project store-test

machine single
  speed 1
  process-startup 0
  msg-startup 0
  rate 1
end

design
  storage a 1
  task t1 1 prog Id
  storage r 1
  arc a -> t1
  arc t1 -> r
end

begin-program
task Id
  in a
  out r
begin
  r := a
end
end-program
";

    fn temp_bang(name: &str, body: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("banger-store-{}-{name}.bang", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(body.as_bytes()).unwrap();
        path
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(content_hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn warm_hit_then_rewrite_rebuilds() {
        let path = temp_bang("rebuild", DESIGN);
        let store = ProjectStore::new();
        let (slot, _, src, hash) = store.lookup(path.to_str().unwrap()).unwrap();
        {
            let mut entry = slot.lock();
            let (_, warm) = entry.ensure(&src, hash, &store.counters).unwrap();
            assert!(!warm, "first build is cold");
            let (_, warm) = entry.ensure(&src, hash, &store.counters).unwrap();
            assert!(warm, "same hash is a hit");
        }
        // Rewrite the file: next lookup + ensure must rebuild.
        std::fs::write(&path, DESIGN.replace("task t1 1", "task t1 2")).unwrap();
        let (slot2, _, src2, hash2) = store.lookup(path.to_str().unwrap()).unwrap();
        assert!(Arc::ptr_eq(&slot, &slot2), "slot is stable across rewrites");
        {
            let mut entry = slot2.lock();
            let (_, warm) = entry.ensure(&src2, hash2, &store.counters).unwrap();
            assert!(!warm, "hash change forces a rebuild");
        }
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.rebuilds), (1, 2, 1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn evict_drops_state_but_keeps_slot() {
        let path = temp_bang("evict", DESIGN);
        let store = ProjectStore::new();
        let (slot, _, src, hash) = store.lookup(path.to_str().unwrap()).unwrap();
        slot.lock().ensure(&src, hash, &store.counters).unwrap();
        assert!(store.evict(path.to_str().unwrap()));
        assert!(!store.evict(path.to_str().unwrap()), "already cold");
        assert!(slot.lock().state.is_none());
        assert_eq!(store.stats().evictions, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_failure_leaves_entry_cold() {
        let path = temp_bang("bad", "not a project at all");
        let store = ProjectStore::new();
        let (slot, _, src, hash) = store.lookup(path.to_str().unwrap()).unwrap();
        assert!(slot.lock().ensure(&src, hash, &store.counters).is_err());
        assert!(slot.lock().state.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        let store = ProjectStore::new();
        assert!(store.lookup("/nonexistent/banger-xyz.bang").is_err());
    }
}
