//! The daemon: a Unix-domain-socket accept loop, one thread per
//! client, panic containment per request.
//!
//! ## Lifecycle
//!
//! [`Server::bind`] claims the socket path (removing a stale socket
//! file left by a crashed daemon), [`Server::serve`] accepts until
//! [`Server::request_shutdown`] is called — by a `shutdown` request,
//! by a signal (see [`install_signal_handlers`]), or programmatically
//! from a test — then removes the socket file and returns. The accept
//! loop polls a nonblocking listener (~50 ms period) so shutdown flags
//! set from signal context are honored promptly without `libc`-level
//! self-pipe machinery.
//!
//! ## Panic containment
//!
//! Every request runs under [`catch_unwind`]. A panic inside the
//! pipeline produces a structured error response and *poisons* the
//! project entry the request addressed: its cached state is evicted, so
//! the next request rebuilds from source. The daemon itself keeps
//! serving — one hostile design cannot take down everyone's sessions.

use super::ops;
use super::protocol::{read_frame, write_frame, Request, Response};
use super::store::ProjectStore;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Set by the signal handler; checked by every accept loop. Process
/// global because POSIX signal handlers have no closure state.
static SIGNALED: AtomicBool = AtomicBool::new(false);

/// Installs `SIGINT`/`SIGTERM` handlers that request a clean shutdown
/// of every [`Server`] in the process. Uses the C `signal()` entry
/// point directly — the workspace vendors no `libc` crate, and setting
/// one `AtomicBool` is async-signal-safe.
pub fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// A bound daemon, ready to [`serve`](Server::serve).
pub struct Server {
    listener: UnixListener,
    socket_path: PathBuf,
    store: Arc<ProjectStore>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the socket, replacing a stale socket file if one exists.
    pub fn bind(socket_path: &Path) -> io::Result<Server> {
        // A live daemon would accept; a dead one leaves a file that
        // blocks bind(2). Probe before clobbering.
        if socket_path.exists() {
            if UnixStream::connect(socket_path).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a daemon is already serving {}", socket_path.display()),
                ));
            }
            std::fs::remove_file(socket_path)?;
        }
        let listener = UnixListener::bind(socket_path)?;
        Ok(Server {
            listener,
            socket_path: socket_path.to_path_buf(),
            store: Arc::new(ProjectStore::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The shared project store (exposed for benches and tests).
    pub fn store(&self) -> Arc<ProjectStore> {
        Arc::clone(&self.store)
    }

    /// A handle that makes [`serve`](Server::serve) return; callable
    /// from any thread.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Requests a clean shutdown of this server.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Accepts clients until shutdown is requested, then removes the
    /// socket file. Each client gets its own thread; client threads
    /// are detached (the process exits right after `serve` in daemon
    /// mode, and test servers close their connections first).
    pub fn serve(&self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        while !self.shutdown.load(Ordering::SeqCst) && !SIGNALED.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    let store = Arc::clone(&self.store);
                    let shutdown = Arc::clone(&self.shutdown);
                    std::thread::spawn(move || serve_client(stream, &store, &shutdown));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    std::fs::remove_file(&self.socket_path).ok();
                    return Err(e);
                }
            }
        }
        std::fs::remove_file(&self.socket_path).ok();
        Ok(())
    }
}

/// One client connection: any number of request frames, one response
/// frame each. Returns when the client closes, on a transport error,
/// or after relaying a `shutdown`.
fn serve_client(mut stream: UnixStream, store: &ProjectStore, shutdown: &AtomicBool) {
    // Frames are tiny; a blocking read that outlives shutdown is fine
    // because the daemon process exits (or the test drops its client)
    // right after serve() returns.
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(_) => return,
        };
        let resp = match std::str::from_utf8(&frame) {
            Err(_) => Response::failure("request frame is not UTF-8"),
            Ok(text) => match Request::from_json(text) {
                Err(e) => Response::failure(format!("bad request: {e}")),
                Ok(req) if req.cmd == "shutdown" => {
                    shutdown.store(true, Ordering::SeqCst);
                    let resp = Response::success("shutting down\n");
                    write_frame(&mut stream, resp.to_json().as_bytes()).ok();
                    return;
                }
                Ok(req) => dispatch_guarded(store, &req),
            },
        };
        if write_frame(&mut stream, resp.to_json().as_bytes()).is_err() {
            return;
        }
    }
}

/// Runs one request under `catch_unwind`. On panic: counts it, poisons
/// (evicts) the addressed entry so the next request rebuilds from
/// source, and returns a structured error instead of killing the
/// connection thread.
pub fn dispatch_guarded(store: &ProjectStore, req: &Request) -> Response {
    match catch_unwind(AssertUnwindSafe(|| ops::handle(store, req))) {
        Ok(resp) => resp,
        Err(payload) => {
            store.counters.panics.fetch_add(1, Ordering::Relaxed);
            if let Some(path) = &req.path {
                // Poison-and-rebuild: whatever half-mutated state the
                // panic left behind must not serve another request.
                store.evict(path);
            }
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Response::failure(format!(
                "panic while handling {:?} request: {msg} (cache entry rebuilt)",
                req.cmd
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_panic_is_contained_and_poisons_the_entry() {
        let store = ProjectStore::new();
        let mut req = Request::new("ping");
        req.inject_handler_panic = true;
        let resp = dispatch_guarded(&store, &req);
        assert!(!resp.ok);
        assert!(resp.error.contains("panic"), "{}", resp.error);
        assert_eq!(store.stats().panics, 1);
        // The daemon-side dispatcher still answers afterwards.
        let resp = dispatch_guarded(&store, &Request::new("ping"));
        assert!(resp.ok);
    }

    #[test]
    fn bind_refuses_a_live_socket_and_replaces_a_stale_one() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("banger-server-test-{}.sock", std::process::id()));
        std::fs::remove_file(&path).ok();
        let server = Server::bind(&path).unwrap();
        assert!(
            Server::bind(&path).is_err(),
            "second bind on a live socket must fail"
        );
        drop(server);
        // The listener is gone but the file remains: stale, replaceable.
        assert!(path.exists());
        let server = Server::bind(&path).unwrap();
        server.request_shutdown();
        server.serve().unwrap();
        assert!(!path.exists(), "serve removes the socket file on exit");
    }
}
