//! A minimal JSON value, parser and writer for the serve protocol.
//!
//! The workspace is deliberately serde-free; every JSON producer writes
//! by hand (CLI `--format json`, the bench records). The daemon needs to
//! *read* JSON too, so this module carries the small recursive-descent
//! parser plus an escaping writer. Only what the protocol needs: no
//! comments, no trailing commas, numbers as `f64`.

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order (the protocol
/// never relies on it, but rendering stays stable for tests).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text. Non-finite numbers render
    /// as `null` (JSON has no inf/NaN).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// JSON string escaping (quotes, backslash, control characters).
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let v = value_at(&chars, &mut i)?;
    skip_ws(&chars, &mut i);
    if i != chars.len() {
        return Err(format!("trailing garbage at offset {i}"));
    }
    Ok(v)
}

fn skip_ws(c: &[char], i: &mut usize) {
    while *i < c.len() && c[*i].is_whitespace() {
        *i += 1;
    }
}

fn value_at(c: &[char], i: &mut usize) -> Result<Json, String> {
    skip_ws(c, i);
    match c.get(*i) {
        Some('[') => {
            *i += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(c, i);
                if c.get(*i) == Some(&']') {
                    *i += 1;
                    return Ok(Json::Arr(items));
                }
                if !items.is_empty() {
                    if c.get(*i) != Some(&',') {
                        return Err(format!("expected , at offset {i}"));
                    }
                    *i += 1;
                }
                items.push(value_at(c, i)?);
            }
        }
        Some('{') => {
            *i += 1;
            let mut pairs = Vec::new();
            loop {
                skip_ws(c, i);
                if c.get(*i) == Some(&'}') {
                    *i += 1;
                    return Ok(Json::Obj(pairs));
                }
                if !pairs.is_empty() {
                    if c.get(*i) != Some(&',') {
                        return Err(format!("expected , at offset {i}"));
                    }
                    *i += 1;
                    skip_ws(c, i);
                }
                let Json::Str(key) = value_at(c, i)? else {
                    return Err(format!("expected string key at offset {i}"));
                };
                skip_ws(c, i);
                if c.get(*i) != Some(&':') {
                    return Err(format!("expected : at offset {i}"));
                }
                *i += 1;
                pairs.push((key, value_at(c, i)?));
            }
        }
        Some('"') => {
            *i += 1;
            let mut s = String::new();
            loop {
                match c.get(*i) {
                    None => return Err("unterminated string".into()),
                    Some('"') => {
                        *i += 1;
                        return Ok(Json::Str(s));
                    }
                    Some('\\') => {
                        *i += 1;
                        match c.get(*i) {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('/') => s.push('/'),
                            Some('n') => s.push('\n'),
                            Some('r') => s.push('\r'),
                            Some('t') => s.push('\t'),
                            Some('b') => s.push('\u{8}'),
                            Some('f') => s.push('\u{c}'),
                            Some('u') => {
                                if *i + 4 >= c.len() {
                                    return Err("truncated \\u escape".into());
                                }
                                let hex: String = c[*i + 1..*i + 5].iter().collect();
                                let n = u32::from_str_radix(&hex, 16).map_err(|e| e.to_string())?;
                                s.push(char::from_u32(n).ok_or("bad \\u codepoint")?);
                                *i += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *i += 1;
                    }
                    Some(&ch) => {
                        s.push(ch);
                        *i += 1;
                    }
                }
            }
        }
        Some('t') if c[*i..].starts_with(&['t', 'r', 'u', 'e']) => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some('f') if c[*i..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some('n') if c[*i..].starts_with(&['n', 'u', 'l', 'l']) => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *i;
            while *i < c.len() && (c[*i].is_ascii_digit() || "+-.eE".contains(c[*i])) {
                *i += 1;
            }
            let s: String = c[start..*i].iter().collect();
            s.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {s:?} at offset {start}"))
        }
        None => Err("empty input".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::Obj(vec![
            ("cmd".into(), Json::Str("run".into())),
            (
                "inputs".into(),
                Json::Obj(vec![
                    ("a".into(), Json::Num(1.5)),
                    (
                        "v".into(),
                        Json::Arr(vec![Json::Num(1.0), Json::Num(-2.0), Json::Num(3e-4)]),
                    ),
                ]),
            ),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_control_characters_and_quotes() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
        assert!(text.contains("\\u0001"), "{text}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}
