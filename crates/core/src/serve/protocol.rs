//! Wire protocol: length-prefixed JSON frames, and the request /
//! response schemas.
//!
//! ## Framing
//!
//! One frame = a big-endian `u32` payload length followed by that many
//! bytes of UTF-8 JSON. Frames above [`MAX_FRAME`] are rejected (a
//! corrupted length prefix must not make the server allocate gigabytes).
//! A clean EOF *between* frames is a normal connection close.
//!
//! ## Requests
//!
//! ```json
//! {"cmd": "schedule", "path": "/abs/proj.bang", "heuristic": "ETF"}
//! {"cmd": "run", "path": "/abs/proj.bang", "inputs": {"a": 2.5, "v": [1, 2, 3]}}
//! {"cmd": "check", "path": "/abs/proj.bang", "format": "json"}
//! {"cmd": "trace", "path": "/abs/proj.bang", "heuristic": "MH", "inputs": {...}}
//! {"cmd": "optimize", "path": "/abs/proj.bang", "fuse": true}
//! {"cmd": "ping"}   {"cmd": "stats"}   {"cmd": "evict", "path": "..."}   {"cmd": "shutdown"}
//! ```
//!
//! Fault-injection hooks (testing only): `"inject_panic": "<task>"` on a
//! `run` forwards to [`ExecOptions::inject_panic`](banger_exec::ExecOptions)
//! (an *attributed executor error*, not a handler crash), while
//! `"inject_handler_panic": true` on any command panics inside the
//! request handler itself — the daemon must survive it.
//!
//! ## Responses
//!
//! ```json
//! {"ok": true, "cached": true, "exit": 0, "output": "...", "notes": "..."}
//! {"ok": false, "error": "..."}
//! ```
//!
//! `output` is byte-identical to what the matching local CLI command
//! prints on stdout (that is what the differential stress test pins);
//! `notes` carries non-deterministic extras (wall-clock timings, drift
//! tables) that a client prints to stderr. `cached` reports whether the
//! request was served from a warm cache entry without recomputation.

use super::json::{self, Json};
use banger_calc::Value;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};

/// Upper bound on one frame's payload, in bytes.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean EOF at a frame boundary; EOF
/// mid-frame and oversized lengths are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// One request to the daemon. Unknown JSON fields are ignored so old
/// daemons tolerate newer clients.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The verb: `check`, `schedule`, `run`, `trace`, `optimize`,
    /// `ping`, `stats`, `evict`, `shutdown`.
    pub cmd: String,
    /// Project file path (server-side canonicalized); absent for
    /// verbs that address the daemon itself.
    pub path: Option<String>,
    /// Scheduling heuristic for `schedule` / `trace` (default `MH`).
    pub heuristic: String,
    /// `check` output format: `text` (default) or `json`.
    pub format: String,
    /// External input values for `run` / `trace`.
    pub inputs: BTreeMap<String, Value>,
    /// `optimize`: also fuse grain-packed clusters.
    pub fuse: bool,
    /// Testing: forward to the executor's per-task panic injection.
    pub inject_panic: Option<String>,
    /// Testing: panic inside the request handler itself.
    pub inject_handler_panic: bool,
}

impl Request {
    /// A request with defaults for everything but the verb.
    pub fn new(cmd: impl Into<String>) -> Self {
        Request {
            cmd: cmd.into(),
            path: None,
            heuristic: "MH".to_string(),
            format: "text".to_string(),
            inputs: BTreeMap::new(),
            fuse: false,
            inject_panic: None,
            inject_handler_panic: false,
        }
    }

    /// A request addressing a project file.
    pub fn for_path(cmd: impl Into<String>, path: impl Into<String>) -> Self {
        let mut r = Request::new(cmd);
        r.path = Some(path.into());
        r
    }

    /// Renders the request as one JSON object.
    pub fn to_json(&self) -> String {
        let mut pairs = vec![("cmd".to_string(), Json::Str(self.cmd.clone()))];
        if let Some(p) = &self.path {
            pairs.push(("path".to_string(), Json::Str(p.clone())));
        }
        pairs.push(("heuristic".to_string(), Json::Str(self.heuristic.clone())));
        pairs.push(("format".to_string(), Json::Str(self.format.clone())));
        if !self.inputs.is_empty() {
            let fields = self
                .inputs
                .iter()
                .map(|(k, v)| (k.clone(), value_to_json(v)))
                .collect();
            pairs.push(("inputs".to_string(), Json::Obj(fields)));
        }
        if self.fuse {
            pairs.push(("fuse".to_string(), Json::Bool(true)));
        }
        if let Some(t) = &self.inject_panic {
            pairs.push(("inject_panic".to_string(), Json::Str(t.clone())));
        }
        if self.inject_handler_panic {
            pairs.push(("inject_handler_panic".to_string(), Json::Bool(true)));
        }
        Json::Obj(pairs).render()
    }

    /// Parses a request from JSON text.
    pub fn from_json(text: &str) -> Result<Request, String> {
        let v = json::parse(text)?;
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("request needs a \"cmd\" string")?
            .to_string();
        let mut req = Request::new(cmd);
        req.path = v.get("path").and_then(Json::as_str).map(str::to_string);
        if let Some(h) = v.get("heuristic").and_then(Json::as_str) {
            req.heuristic = h.to_string();
        }
        if let Some(f) = v.get("format").and_then(Json::as_str) {
            req.format = f.to_string();
        }
        if let Some(Json::Obj(fields)) = v.get("inputs") {
            for (name, val) in fields {
                req.inputs.insert(
                    name.clone(),
                    json_to_value(val).map_err(|e| format!("bad input {name:?}: {e}"))?,
                );
            }
        }
        req.fuse = v.get("fuse").and_then(Json::as_bool).unwrap_or(false);
        req.inject_panic = v
            .get("inject_panic")
            .and_then(Json::as_str)
            .map(str::to_string);
        req.inject_handler_panic = v
            .get("inject_handler_panic")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        Ok(req)
    }
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Num(n) => Json::Num(*n),
        Value::Array(vs) => Json::Arr(vs.iter().map(|x| Json::Num(*x)).collect()),
    }
}

fn json_to_value(v: &Json) -> Result<Value, String> {
    match v {
        Json::Num(n) => Ok(Value::Num(*n)),
        Json::Arr(items) => {
            let mut vals = Vec::with_capacity(items.len());
            for item in items {
                vals.push(item.as_num().ok_or("array elements must be numbers")?);
            }
            Ok(Value::array(vals))
        }
        _ => Err("inputs must be numbers or arrays of numbers".into()),
    }
}

/// One response from the daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Whether the request succeeded operationally. `check` on a design
    /// with error-severity findings is still `ok: true` (the check *ran*)
    /// with `exit: 1`, matching the CLI's exit-code contract.
    pub ok: bool,
    /// Served from a warm cache entry without recomputation.
    pub cached: bool,
    /// Suggested client exit code (0 success, 1 diagnostics errors).
    pub exit: i32,
    /// Deterministic stdout payload (byte-identical to local mode).
    pub output: String,
    /// Non-deterministic extras for stderr (timings, drift tables).
    pub notes: String,
    /// Failure description when `ok` is false.
    pub error: String,
}

impl Response {
    /// A successful response with the given stdout payload.
    pub fn success(output: impl Into<String>) -> Self {
        Response {
            ok: true,
            cached: false,
            exit: 0,
            output: output.into(),
            notes: String::new(),
            error: String::new(),
        }
    }

    /// A failed response with the given error description.
    pub fn failure(error: impl Into<String>) -> Self {
        Response {
            ok: false,
            cached: false,
            exit: 1,
            output: String::new(),
            notes: String::new(),
            error: error.into(),
        }
    }

    /// Marks the response as served from a warm cache.
    pub fn cached(mut self, cached: bool) -> Self {
        self.cached = cached;
        self
    }

    /// Sets the suggested client exit code.
    pub fn with_exit(mut self, exit: i32) -> Self {
        self.exit = exit;
        self
    }

    /// Attaches stderr notes.
    pub fn with_notes(mut self, notes: impl Into<String>) -> Self {
        self.notes = notes.into();
        self
    }

    /// Renders the response as one JSON object.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(self.ok)),
            ("cached".to_string(), Json::Bool(self.cached)),
            ("exit".to_string(), Json::Num(f64::from(self.exit))),
            ("output".to_string(), Json::Str(self.output.clone())),
            ("notes".to_string(), Json::Str(self.notes.clone())),
            ("error".to_string(), Json::Str(self.error.clone())),
        ])
        .render()
    }

    /// Parses a response from JSON text.
    pub fn from_json(text: &str) -> Result<Response, String> {
        let v = json::parse(text)?;
        Ok(Response {
            ok: v
                .get("ok")
                .and_then(Json::as_bool)
                .ok_or("response needs an \"ok\" bool")?,
            cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
            exit: v.get("exit").and_then(Json::as_num).unwrap_or(0.0) as i32,
            output: v
                .get("output")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            notes: v
                .get("notes")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            error: v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let mut req = Request::for_path("run", "/tmp/x.bang");
        req.heuristic = "ETF".into();
        req.inputs.insert("a".into(), Value::Num(2.5));
        req.inputs
            .insert("v".into(), Value::array(vec![1.0, 2.0, 3.0]));
        req.inject_panic = Some("w3".into());
        let back = Request::from_json(&req.to_json()).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::success("line1\nline2 \"quoted\"\n")
            .cached(true)
            .with_exit(1)
            .with_notes("(3 task runs)");
        let back = Response::from_json(&resp.to_json()).unwrap();
        assert_eq!(resp, back);
        let fail = Response::failure("boom: \\path\\");
        assert_eq!(fail, Response::from_json(&fail.to_json()).unwrap());
    }

    #[test]
    fn bad_requests_are_rejected() {
        assert!(Request::from_json("{}").is_err());
        assert!(Request::from_json("not json").is_err());
        assert!(Request::from_json("{\"cmd\": 7}").is_err());
        assert!(Request::from_json("{\"cmd\": \"run\", \"inputs\": {\"a\": \"str\"}}").is_err());
    }

    #[test]
    fn frame_round_trip_and_guards() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"cmd\":\"ping\"}").unwrap();
        write_frame(&mut buf, b"second").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(&b"{\"cmd\":\"ping\"}"[..])
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"second"[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");

        // Oversized length prefix is rejected without allocating.
        let huge = (MAX_FRAME as u32 + 1).to_be_bytes();
        let mut r = &huge[..];
        assert!(read_frame(&mut r).is_err());

        // EOF mid-frame is an error, not a clean close.
        let mut partial = Vec::new();
        write_frame(&mut partial, b"hello").unwrap();
        partial.truncate(partial.len() - 2);
        let mut r = &partial[..];
        assert!(read_frame(&mut r).is_err());
    }
}
