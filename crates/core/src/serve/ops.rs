//! Request handlers: each verb reproduces the matching CLI command's
//! stdout byte-for-byte, so a client can transparently swap between
//! daemon and local execution.
//!
//! Deterministic stdout goes in [`Response::output`]; things the CLI
//! sends to stderr (wall-clock timings, optimizer stats, the `die`
//! line for error-severity diagnostics) go in [`Response::notes`] or
//! [`Response::error`]. [`Response::cached`] reports whether the answer
//! came from a warm cache without recomputation.

use super::protocol::{Request, Response};
use super::store::{EntryState, ProjectStore, SchedKey};
use crate::analyze;
use crate::project::ProjectError;
use std::sync::atomic::Ordering;

/// Dispatches one request against the store. Panics are *not* caught
/// here — the server wraps this call in `catch_unwind` and poisons the
/// affected entry (see [`super::server`]).
pub fn handle(store: &ProjectStore, req: &Request) -> Response {
    store.counters.requests.fetch_add(1, Ordering::Relaxed);
    if req.inject_handler_panic {
        panic!("injected fault: inject_handler_panic requested");
    }
    match req.cmd.as_str() {
        "ping" => Response::success("pong\n"),
        "stats" => Response::success(store.stats().render()),
        "evict" => {
            let Some(path) = &req.path else {
                return Response::failure("evict needs a \"path\"");
            };
            let dropped = store.evict(path);
            Response::success(if dropped {
                "evicted\n"
            } else {
                "not cached\n"
            })
        }
        "check" => with_entry(store, req, op_check),
        "schedule" | "gantt" => with_entry(store, req, op_schedule),
        "run" => with_entry(store, req, op_run),
        "trace" => with_entry(store, req, op_trace),
        "optimize" => with_entry(store, req, op_optimize),
        // `shutdown` is intercepted by the server before dispatch; seeing
        // it here means a non-server caller (e.g. a unit test).
        "shutdown" => Response::success("shutting down\n"),
        other => Response::failure(format!(
            "unknown command {other:?} (want check, schedule, run, trace, optimize, ping, stats, evict, shutdown)"
        )),
    }
}

/// Resolves the request path, syncs the entry with the current source
/// bytes, and runs `op` under the per-entry lock. `warm` tells the op
/// whether the entry survived from an earlier request (individual ops
/// may still report `cached: false` for work not memoized at their
/// level).
fn with_entry(
    store: &ProjectStore,
    req: &Request,
    op: fn(&mut EntryState, &Request, bool) -> Response,
) -> Response {
    let Some(path) = &req.path else {
        return Response::failure(format!("{} needs a \"path\"", req.cmd));
    };
    let (slot, _canon, source, hash) = match store.lookup(path) {
        Ok(x) => x,
        Err(e) => return Response::failure(e),
    };
    let mut entry = slot.lock();
    match entry.ensure(&source, hash, &store.counters) {
        Ok((state, warm)) => op(state, req, warm),
        Err(e) => Response::failure(e),
    }
}

/// `check [--format text|json]` — mirrors `cmd_check` without
/// `--weights` (weight reports need a run and are served locally).
fn op_check(state: &mut EntryState, req: &Request, _warm: bool) -> Response {
    let cached = state.checks.contains_key(&req.format);
    if !cached {
        let diags = state.project.diagnose().to_vec();
        let output = match req.format.as_str() {
            "text" => format!("{}\n", analyze::render_report(&diags)),
            "json" => format!("{}\n", analyze::render_json(&diags)),
            other => {
                return Response::failure(format!(
                    "unknown check format {other:?} (want text or json)"
                ))
            }
        };
        let exit = i32::from(analyze::has_errors(&diags));
        state.checks.insert(req.format.clone(), (output, exit));
    }
    let Some((output, exit)) = state.checks.get(&req.format) else {
        return Response::failure("check cache lost its own entry");
    };
    let mut resp = Response::success(output.clone())
        .cached(cached)
        .with_exit(*exit);
    if *exit != 0 {
        // The CLI prints this through `die` on stderr.
        let diags = state.project.diagnose();
        let n = diags
            .iter()
            .filter(|d| d.severity == analyze::Severity::Error)
            .count();
        resp = resp.with_notes(format!(
            "banger: design has {n} error-severity diagnostic{}",
            if n == 1 { "" } else { "s" }
        ));
    }
    resp
}

/// `schedule` / `gantt [-H h]` — mirrors `cmd_gantt`; the rendered
/// chart and summary line are memoized per (design hash, machine spec,
/// heuristic).
fn op_schedule(state: &mut EntryState, req: &Request, _warm: bool) -> Response {
    let key: SchedKey = (
        state.source_hash,
        state.machine_spec.clone(),
        req.heuristic.clone(),
    );
    if let Some(c) = state.schedules.get(&key) {
        return Response::success(c.output.clone()).cached(true);
    }
    let s = match state.project.schedule(&req.heuristic) {
        Ok(s) => s,
        Err(e) => return Response::failure(e.to_string()),
    };
    let gantt = match state.project.gantt(&s) {
        Ok(g) => g,
        Err(e) => return Response::failure(e.to_string()),
    };
    let (graph, machine) = match state.project.flatten() {
        Ok(f) => {
            let g = f.graph.clone();
            match state.project.machine() {
                Some(m) => (g, m.clone()),
                None => return Response::failure("project has no machine"),
            }
        }
        Err(e) => return Response::failure(e.to_string()),
    };
    let output = format!(
        "{gantt}\nmakespan {:.3}, speedup {:.2}x, efficiency {:.0}%, {} of {} processors used\n",
        s.makespan(),
        s.speedup(&graph, &machine),
        100.0 * s.efficiency(&graph, &machine),
        s.processors_used(),
        machine.processors()
    );
    state.schedules.insert(
        key,
        super::store::CachedSchedule {
            schedule: s,
            output: output.clone(),
        },
    );
    Response::success(output).cached(false)
}

/// `run [-i var=value]...` — mirrors plain `cmd_run` (no `--trace`, no
/// `--repeat`). Fires through the entry's warm [`Session`]; `cached`
/// reports pool reuse. A worker-level failure drops the session so the
/// next request rebuilds the pool.
fn op_run(state: &mut EntryState, req: &Request, _warm: bool) -> Response {
    if let Some(task) = &req.inject_panic {
        // Executor fault injection takes a one-off session: options are
        // fixed at pool construction and must not contaminate the warm
        // pool.
        let opts = banger_exec::ExecOptions {
            inject_panic: Some(task.clone()),
            ..Default::default()
        };
        return match state.project.run_with(&req.inputs, &opts) {
            Ok(report) => render_run(&report),
            Err(e) => Response::failure(e.to_string()),
        };
    }
    let warm_pool = state.session.is_some();
    if state.session.is_none() {
        match state.project.session(&banger_exec::ExecOptions::default()) {
            Ok(s) => state.session = Some(s),
            Err(e) => return Response::failure(e.to_string()),
        }
    }
    let Some(session) = state.session.as_mut() else {
        return Response::failure("session vanished after construction");
    };
    match session.run(&req.inputs) {
        Ok(report) => render_run(&report).cached(warm_pool),
        Err(e) => {
            // The pool may have lost workers; rebuild it next time.
            state.session = None;
            Response::failure(ProjectError::from(e).to_string())
        }
    }
}

/// Renders an [`ExecReport`](banger_exec::ExecReport) exactly as the
/// CLI's `print_run_output` does: prints + outputs on stdout, the
/// wall-clock line on stderr (here: notes).
fn render_run(report: &banger_exec::ExecReport) -> Response {
    let mut out = String::new();
    for (task, line) in &report.prints {
        out.push_str(&format!("[{task}] {line}\n"));
    }
    for (var, value) in &report.outputs {
        out.push_str(&format!("{var} = {value}\n"));
    }
    Response::success(out).with_notes(format!(
        "({} task runs, wall {:?})",
        report.runs.len(),
        report.wall
    ))
}

/// `trace [-H h] [-i ...]` — a pinned, traced run plus the drift
/// report. Daemon-native (the CLI's `run --trace` also writes a file,
/// so it stays local); output is wall-clock-dependent and therefore
/// never byte-compared or cached.
fn op_trace(state: &mut EntryState, req: &Request, _warm: bool) -> Response {
    let schedule = match state.project.schedule(&req.heuristic) {
        Ok(s) => s,
        Err(e) => return Response::failure(e.to_string()),
    };
    let options = banger_exec::ExecOptions {
        mode: banger_exec::ExecMode::pinned(schedule.clone()),
        trace: true,
        ..Default::default()
    };
    let report = match state.project.run_with(&req.inputs, &options) {
        Ok(r) => r,
        Err(e) => return Response::failure(e.to_string()),
    };
    let Some(trace) = report.trace.as_ref() else {
        return Response::failure("traced run recorded no trace");
    };
    let drift = match state.project.drift_report(&schedule, trace) {
        Ok(d) => d,
        Err(e) => return Response::failure(e.to_string()),
    };
    let graph = match state.project.flatten() {
        Ok(f) => f.graph.clone(),
        Err(e) => return Response::failure(e.to_string()),
    };
    let base = render_run(&report);
    let name_of = move |t| crate::project::short_name(&graph.task(t).name);
    let output = format!("{}{}\n", base.output, drift.render(&name_of));
    let notes = format!("{}\n{}", base.notes, trace.summary().render());
    Response::success(output).with_notes(notes)
}

/// `optimize [--fuse]` — mirrors `cmd_optimize` without `--expand` /
/// `--emit`: empty stdout, the optimizer stats on stderr (notes). Runs
/// on a clone so the cached project — and with it every byte of every
/// other response — stays untouched.
fn op_optimize(state: &mut EntryState, req: &Request, _warm: bool) -> Response {
    let mut scratch = state.project.clone();
    let stats = match scratch.optimize(req.fuse) {
        Ok(s) => s,
        Err(e) => return Response::failure(e.to_string()),
    };
    let f = match scratch.flatten() {
        Ok(f) => f,
        Err(e) => return Response::failure(e.to_string()),
    };
    let mut notes = render_opt_stats(&stats);
    notes.push_str(&format!(
        "\noptimized design: {} tasks, {} arcs",
        f.graph.task_count(),
        f.graph.edge_count()
    ));
    Response::success("").with_notes(notes)
}

/// Mirror of the CLI's `render_opt_stats` (kept in lockstep so notes
/// match local stderr byte-for-byte).
fn render_opt_stats(stats: &crate::project::OptimizeStats) -> String {
    let mut out = format!(
        "dce: removed {} arcs, {} input decls, {} locals, {} ports; dropped {} programs",
        stats.dce.arcs_removed,
        stats.dce.inputs_trimmed,
        stats.dce.locals_trimmed,
        stats.dce.ports_removed,
        stats.dce.programs_dropped,
    );
    if let Some(f) = &stats.fuse {
        out.push_str(&format!(
            "\nfuse: {} -> {} tasks ({} clusters fused, {} rejected), est. parallel time {:.1} -> {:.1}",
            f.tasks_before,
            f.tasks_after,
            f.clusters_fused,
            f.clusters_rejected,
            f.estimated_pt_before,
            f.estimated_pt_after,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::path::PathBuf;

    fn temp_bang(name: &str, body: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("banger-ops-{}-{name}.bang", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(body.as_bytes()).unwrap();
        path
    }

    fn lu3_source() -> String {
        let root = env!("CARGO_MANIFEST_DIR");
        std::fs::read_to_string(format!("{root}/../../examples/projects/lu3.bang")).unwrap()
    }

    #[test]
    fn schedule_is_cached_and_stable() {
        let path = temp_bang("sched", &lu3_source());
        let store = ProjectStore::new();
        let mut req = Request::for_path("schedule", path.to_str().unwrap());
        req.heuristic = "ETF".into();
        let cold = handle(&store, &req);
        assert!(cold.ok, "{}", cold.error);
        assert!(!cold.cached);
        assert!(cold.output.contains("makespan"), "{}", cold.output);
        let warm = handle(&store, &req);
        assert!(warm.cached);
        assert_eq!(cold.output, warm.output);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_and_unknown_heuristic() {
        let path = temp_bang("check", &lu3_source());
        let store = ProjectStore::new();
        let resp = handle(&store, &Request::for_path("check", path.to_str().unwrap()));
        assert!(resp.ok, "{}", resp.error);
        assert_eq!(resp.exit, 0);
        let mut bad = Request::for_path("schedule", path.to_str().unwrap());
        bad.heuristic = "NOPE".into();
        let resp = handle(&store, &bad);
        assert!(!resp.ok);
        assert!(resp.error.contains("unknown heuristic"), "{}", resp.error);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_reuses_the_session() {
        let path = temp_bang("run", &lu3_source());
        let store = ProjectStore::new();
        let mut req = Request::for_path("run", path.to_str().unwrap());
        // A = identity, b = [1,2,3] -> x = [1,2,3].
        req.inputs.insert(
            "A".into(),
            banger_calc::Value::array(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]),
        );
        req.inputs
            .insert("b".into(), banger_calc::Value::array(vec![1.0, 2.0, 3.0]));
        let first = handle(&store, &req);
        assert!(first.ok, "{}", first.error);
        assert!(!first.cached, "first run builds the pool");
        assert!(first.output.contains("x = [1, 2, 3]"), "{}", first.output);
        let second = handle(&store, &req);
        assert!(second.cached, "second run reuses the warm pool");
        assert_eq!(first.output, second.output);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn executor_panic_is_attributed_and_contained() {
        let path = temp_bang("inject", &lu3_source());
        let store = ProjectStore::new();
        let mut req = Request::for_path("run", path.to_str().unwrap());
        req.inputs.insert(
            "A".into(),
            banger_calc::Value::array(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]),
        );
        req.inputs
            .insert("b".into(), banger_calc::Value::array(vec![1.0, 2.0, 3.0]));
        let mut bad = req.clone();
        bad.inject_panic = Some("Factor.fan1".into());
        let resp = handle(&store, &bad);
        assert!(!resp.ok);
        assert!(resp.error.contains("Factor.fan1"), "{}", resp.error);
        // The entry survives: a clean run on the same store succeeds.
        let resp = handle(&store, &req);
        assert!(resp.ok, "{}", resp.error);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ping_stats_evict() {
        let store = ProjectStore::new();
        assert_eq!(handle(&store, &Request::new("ping")).output, "pong\n");
        let resp = handle(&store, &Request::new("stats"));
        assert!(resp.output.starts_with("requests 2"), "{}", resp.output);
        let resp = handle(&store, &Request::for_path("evict", "/nonexistent.bang"));
        assert_eq!(resp.output, "not cached\n");
        assert!(!handle(&store, &Request::new("nonsense")).ok);
    }
}
