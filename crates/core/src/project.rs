//! The Banger *project*: one design + its PITS programs + a target
//! machine, with every environment operation (schedule, trial-run,
//! simulate, execute, predict, generate) hanging off it.
//!
//! This is the programmatic equivalent of the four-step workflow the paper
//! describes: *"draw a hierarchical dataflow graph ... define a target
//! machine ... specify algorithms as small sequential tasks ... generate
//! the code."*

use crate::chart::SpeedupPoint;
use crate::gantt::{self, GanttOptions};
use banger_analyze::Diagnostic;
use banger_calc::{interp, InterpConfig, Outcome, ProgramLibrary, RunError, Value};
use banger_codegen::CodegenError;
use banger_exec::{execute, ExecError, ExecMode, ExecOptions, ExecReport, Session};
use banger_machine::{Machine, MachineParams, Topology};
use banger_sched::{Schedule, ScheduleSummary};
use banger_sim::{simulate, SimError, SimOptions, SimResult};
use banger_taskgraph::hierarchy::Flattened;
use banger_taskgraph::{GraphError, HierGraph};
use banger_trace::{DriftReport, Trace};
use std::collections::BTreeMap;
use std::fmt;

/// Project-level errors.
#[derive(Debug)]
pub enum ProjectError {
    /// No target machine has been defined yet.
    NoMachine,
    /// The design failed to flatten.
    Graph(GraphError),
    /// Unknown heuristic name.
    UnknownHeuristic(String),
    /// A trial run failed.
    Trial(RunError),
    /// Unknown program name for a trial run.
    UnknownProgram(String),
    /// Simulation failure.
    Sim(SimError),
    /// Execution failure.
    Exec(ExecError),
    /// Code generation failure.
    Codegen(CodegenError),
    /// The design failed static analysis with error-severity diagnostics
    /// (see [`Project::diagnose`]); carries every finding, warnings
    /// included.
    Invalid(Vec<Diagnostic>),
    /// A graph-rewrite pass failed (see [`Project::optimize`] and
    /// [`Project::expand_task`]).
    Opt(banger_opt::OptError),
    /// The cached flatten state was read before [`Project::flatten`]
    /// populated it — a call-order slip inside this crate. Long-lived
    /// consumers (the `serve` daemon) report this as a structured error
    /// instead of panicking.
    NotFlattened,
}

impl fmt::Display for ProjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectError::NoMachine => write!(f, "no target machine defined (use set_machine)"),
            ProjectError::Graph(e) => write!(f, "design error: {e}"),
            ProjectError::UnknownHeuristic(h) => write!(f, "unknown heuristic {h:?}"),
            ProjectError::Trial(e) => write!(f, "trial run failed: {e}"),
            ProjectError::UnknownProgram(p) => write!(f, "no program named {p:?}"),
            ProjectError::Sim(e) => write!(f, "simulation failed: {e}"),
            ProjectError::Exec(e) => write!(f, "execution failed: {e}"),
            ProjectError::Codegen(e) => write!(f, "code generation failed: {e}"),
            ProjectError::Invalid(diags) => {
                writeln!(f, "the design failed static analysis:")?;
                write!(f, "{}", banger_analyze::render_report(diags))
            }
            ProjectError::Opt(e) => write!(f, "optimizer error: {e}"),
            ProjectError::NotFlattened => {
                write!(f, "internal error: design not flattened before use")
            }
        }
    }
}

impl std::error::Error for ProjectError {}

impl From<GraphError> for ProjectError {
    fn from(e: GraphError) -> Self {
        ProjectError::Graph(e)
    }
}
impl From<SimError> for ProjectError {
    fn from(e: SimError) -> Self {
        ProjectError::Sim(e)
    }
}
impl From<ExecError> for ProjectError {
    fn from(e: ExecError) -> Self {
        ProjectError::Exec(e)
    }
}
impl From<CodegenError> for ProjectError {
    fn from(e: CodegenError) -> Self {
        ProjectError::Codegen(e)
    }
}
impl From<banger_opt::OptError> for ProjectError {
    fn from(e: banger_opt::OptError) -> Self {
        ProjectError::Opt(e)
    }
}

/// What [`Project::optimize`] changed, pass by pass.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeStats {
    /// Dead-arc / dead-port elimination counts.
    pub dce: banger_opt::DceStats,
    /// Fusion counts, when fusion was requested.
    pub fuse: Option<banger_opt::FuseStats>,
}

/// One row of [`Project::weight_report`]: how a task's drawn scheduling
/// weight compares with the static estimate of its attached program and,
/// when a run report is supplied, with the measured operation count.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightRow {
    /// Qualified task name in the flattened graph (e.g. `Factor.fan1`).
    pub task: String,
    /// Name of the attached PITS program, when the node has one.
    pub program: Option<String>,
    /// The weight drawn on the design node.
    pub drawn: f64,
    /// Static cost bounds inferred for the program by the abstract
    /// interpreter; `None` when the task has no program or the name is
    /// not in the library.
    pub cost: Option<banger_calc::absint::StaticCost>,
    /// Operation count measured by a real execution, when one was given.
    pub measured: Option<f64>,
}

/// Renders weight rows as the aligned text table behind
/// `banger check --weights`.
pub fn render_weight_table(rows: &[WeightRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:<12} {:>10} {:>12} {:>22} {:>10}\n",
        "task", "program", "drawn", "static est", "static bounds", "measured"
    ));
    for r in rows {
        let (est, bounds) = match &r.cost {
            Some(c) => {
                let hi = if c.ops_hi.is_finite() {
                    format!("{}", c.ops_hi)
                } else {
                    "inf".to_string()
                };
                let mark = if c.exact { " (exact)" } else { "" };
                (format!("{}", c.est), format!("[{}, {hi}]{mark}", c.ops_lo))
            }
            None => ("-".to_string(), "-".to_string()),
        };
        let measured = match r.measured {
            Some(m) => format!("{m}"),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<24} {:<12} {:>10} {:>12} {:>22} {:>10}\n",
            r.task,
            r.program.as_deref().unwrap_or("-"),
            r.drawn,
            est,
            bounds,
            measured
        ));
    }
    out
}

/// Renders weight rows as a JSON array under the stable schema used by
/// `banger check --weights --format json`: one object per task with
/// `task`, `program`, `drawn`, `static` (`est`/`ops_lo`/`ops_hi`/`exact`,
/// `ops_hi` null when unbounded) and `measured`; absent pieces are null.
pub fn weight_rows_json(rows: &[WeightRow]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x}")
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"task\": \"{}\", ", esc(&r.task)));
        match &r.program {
            Some(p) => out.push_str(&format!("\"program\": \"{}\", ", esc(p))),
            None => out.push_str("\"program\": null, "),
        }
        out.push_str(&format!("\"drawn\": {}, ", num(r.drawn)));
        match &r.cost {
            Some(c) => out.push_str(&format!(
                "\"static\": {{\"est\": {}, \"ops_lo\": {}, \"ops_hi\": {}, \"exact\": {}}}, ",
                num(c.est),
                num(c.ops_lo),
                num(c.ops_hi),
                c.exact
            )),
            None => out.push_str("\"static\": null, "),
        }
        match r.measured {
            Some(m) => out.push_str(&format!("\"measured\": {}", num(m))),
            None => out.push_str("\"measured\": null"),
        }
        out.push('}');
    }
    out.push_str(if rows.is_empty() { "]" } else { "\n]" });
    out
}

/// A Banger project.
#[derive(Debug, Clone)]
pub struct Project {
    name: String,
    design: HierGraph,
    library: ProgramLibrary,
    machine: Option<Machine>,
    flattened: Option<Flattened>,
    diagnostics: Option<Vec<Diagnostic>>,
    warned: bool,
}

impl Project {
    /// Creates a project around a design.
    pub fn new(name: impl Into<String>, design: HierGraph) -> Self {
        Project {
            name: name.into(),
            design,
            library: ProgramLibrary::new(),
            machine: None,
            flattened: None,
            diagnostics: None,
            warned: false,
        }
    }

    /// Project name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The hierarchical design.
    pub fn design(&self) -> &HierGraph {
        &self.design
    }

    /// Mutable design access; invalidates the flatten and diagnostics
    /// caches.
    pub fn design_mut(&mut self) -> &mut HierGraph {
        self.flattened = None;
        self.invalidate_diagnostics();
        &mut self.design
    }

    /// The PITS program library.
    pub fn library(&self) -> &ProgramLibrary {
        &self.library
    }

    /// Mutable program library access; invalidates the diagnostics cache.
    pub fn library_mut(&mut self) -> &mut ProgramLibrary {
        self.invalidate_diagnostics();
        &mut self.library
    }

    /// Defines the target machine (paper step 2).
    pub fn set_machine(&mut self, machine: Machine) {
        self.machine = Some(machine);
    }

    /// The current machine.
    pub fn machine(&self) -> Option<&Machine> {
        self.machine.as_ref()
    }

    /// Flattens (and caches) the design.
    pub fn flatten(&mut self) -> Result<&Flattened, ProjectError> {
        if self.flattened.is_none() {
            self.flattened = Some(self.design.flatten()?);
        }
        self.flattened_ref()
    }

    /// Checked access to the flatten cache: every internal reader goes
    /// through here after a [`flatten`](Self::flatten) call, so a
    /// call-order slip surfaces as [`ProjectError::NotFlattened`]
    /// instead of a panic inside a long-lived process.
    fn flattened_ref(&self) -> Result<&Flattened, ProjectError> {
        self.flattened.as_ref().ok_or(ProjectError::NotFlattened)
    }

    fn machine_ref(&self) -> Result<&Machine, ProjectError> {
        self.machine.as_ref().ok_or(ProjectError::NoMachine)
    }

    fn invalidate_diagnostics(&mut self) {
        self.diagnostics = None;
        self.warned = false;
    }

    /// Runs static analysis over the design and library (see
    /// [`banger_analyze::diagnose`]) and returns the findings, cached
    /// until the design or library changes.
    pub fn diagnose(&mut self) -> &[Diagnostic] {
        if self.diagnostics.is_none() {
            self.diagnostics = Some(banger_analyze::diagnose(&self.design, &self.library));
        }
        // Populated just above; the non-panicking read keeps a daemon
        // alive even if this invariant ever regresses.
        self.diagnostics.as_deref().unwrap_or_default()
    }

    /// Refuses to proceed on error-severity diagnostics; prints warnings
    /// to stderr (once per fresh analysis) and continues otherwise.
    /// Called by [`schedule`](Self::schedule), [`run`](Self::run),
    /// [`run_scheduled`](Self::run_scheduled) and the code generators.
    fn gate(&mut self) -> Result<(), ProjectError> {
        let diags = self.diagnose();
        if banger_analyze::has_errors(diags) {
            return Err(ProjectError::Invalid(diags.to_vec()));
        }
        if !self.warned {
            self.warned = true;
            for d in self.diagnostics.as_deref().unwrap_or_default() {
                eprintln!("{}", banger_analyze::render_text(d));
            }
        }
        Ok(())
    }

    /// Runs a named scheduling heuristic (see
    /// [`banger_sched::HEURISTIC_NAMES`], plus `"DSH"`).
    /// The design must pass [`diagnose`](Self::diagnose) with no errors.
    pub fn schedule(&mut self, heuristic: &str) -> Result<Schedule, ProjectError> {
        self.flatten()?;
        // Report the missing machine before any design diagnostics: it is
        // the first thing the user must fix to get a schedule at all.
        self.machine_ref()?;
        self.gate()?;
        let m = self.machine_ref()?;
        let g = &self.flattened_ref()?.graph;
        banger_sched::run_heuristic(heuristic, g, m)
            .ok_or_else(|| ProjectError::UnknownHeuristic(heuristic.to_string()))
    }

    /// Renders a schedule as an ASCII Gantt chart (paper Figure 3, left).
    pub fn gantt(&mut self, schedule: &Schedule) -> Result<String, ProjectError> {
        let procs = self.machine_ref()?.processors();
        let f = self.flatten()?;
        let g = &f.graph;
        Ok(gantt::render(
            schedule,
            procs,
            |t| short_name(&g.task(t).name),
            GanttOptions::default(),
        ))
    }

    /// Trial-runs one named PITS program with explicit inputs (paper
    /// Figure 4's "trial run" of a single node). Executes the library's
    /// compile-once bytecode form.
    pub fn trial_run(
        &self,
        program: &str,
        inputs: &BTreeMap<String, Value>,
    ) -> Result<Outcome, ProjectError> {
        self.trial_run_with(program, inputs, InterpConfig::default())
    }

    /// [`trial_run`](Self::trial_run) with explicit interpreter
    /// configuration: step budget, and `reference: true` to use the
    /// tree-walking reference interpreter instead of the compiled VM
    /// (`banger trial --reference`). Both produce identical outcomes.
    pub fn trial_run_with(
        &self,
        program: &str,
        inputs: &BTreeMap<String, Value>,
        config: InterpConfig,
    ) -> Result<Outcome, ProjectError> {
        if config.reference {
            let prog = self
                .library
                .get(program)
                .ok_or_else(|| ProjectError::UnknownProgram(program.to_string()))?;
            interp::run_with(prog, inputs, config).map_err(ProjectError::Trial)
        } else {
            let compiled = self
                .library
                .get_compiled(program)
                .ok_or_else(|| ProjectError::UnknownProgram(program.to_string()))?;
            banger_calc::vm::run_compiled(&compiled, inputs, config).map_err(ProjectError::Trial)
        }
    }

    /// Re-weights every task node from the static cost estimate of its
    /// attached program — the "instant feedback" path from editing a task
    /// body to a refreshed schedule prediction. Returns the number of
    /// tasks re-weighted.
    pub fn calibrate_from_programs(&mut self) -> Result<usize, ProjectError> {
        let lib = self.library.clone();
        let mut updated = 0usize;
        fn walk(design: &mut HierGraph, lib: &ProgramLibrary, updated: &mut usize) {
            let ids: Vec<_> = design.nodes().map(|(id, _)| id).collect();
            for id in ids {
                // Only task nodes carry programs.
                let prog_name = match design.node(id).map(|n| &n.kind) {
                    Some(banger_taskgraph::NodeKind::Task {
                        program: Some(p), ..
                    }) => Some(p.clone()),
                    _ => None,
                };
                if let Some(p) = prog_name {
                    if let Some(w) = lib.estimate_weight(&p) {
                        design.set_task_weight(id, w);
                        *updated += 1;
                    }
                }
                design.with_expansion_mut(id, |sub| walk(sub, lib, updated));
            }
        }
        walk(&mut self.design, &lib, &mut updated);
        self.flattened = None;
        self.invalidate_diagnostics();
        Ok(updated)
    }

    /// One [`WeightRow`] per task in the flattened design, comparing the
    /// drawn weight with the abstract interpreter's static cost of the
    /// attached program and, when `measured` is supplied, with the
    /// operation counts of that execution (max over task copies). This is
    /// the data behind `banger check --weights`.
    pub fn weight_report(
        &mut self,
        measured: Option<&ExecReport>,
    ) -> Result<Vec<WeightRow>, ProjectError> {
        self.flatten()?;
        let g = &self.flattened_ref()?.graph;
        let meas = measured.map(|r| r.measured_weights(g.task_count()));
        Ok(g.tasks()
            .map(|(t, task)| WeightRow {
                task: task.name.clone(),
                program: task.program.clone(),
                drawn: task.weight,
                cost: task
                    .program
                    .as_deref()
                    .and_then(|p| self.library.static_cost(p)),
                measured: meas.as_ref().map(|m| m[t.index()]),
            })
            .collect())
    }

    /// Simulates a schedule on the machine (trial run of the *entire
    /// program*, message-accurate).
    pub fn simulate(&mut self, schedule: &Schedule) -> Result<SimResult, ProjectError> {
        self.flatten()?;
        let m = self.machine_ref()?;
        let g = &self.flattened_ref()?.graph;
        Ok(simulate(g, m, schedule, SimOptions::default())?)
    }

    /// Executes the design for real on host threads (greedy pool).
    /// The design must pass [`diagnose`](Self::diagnose) with no errors.
    pub fn run(&mut self, inputs: &BTreeMap<String, Value>) -> Result<ExecReport, ProjectError> {
        self.run_with(inputs, &ExecOptions::default())
    }

    /// Executes the design pinned to a schedule (worker *i* = processor
    /// *i*).
    pub fn run_scheduled(
        &mut self,
        schedule: &Schedule,
        inputs: &BTreeMap<String, Value>,
    ) -> Result<ExecReport, ProjectError> {
        self.run_with(
            inputs,
            &ExecOptions {
                mode: ExecMode::pinned(schedule.clone()),
                ..ExecOptions::default()
            },
        )
    }

    /// Executes the design with full [`ExecOptions`] control — mode,
    /// interpreter configuration, and [`ExecOptions::trace`] to record
    /// the event stream consumed by [`observed_gantt`](Self::observed_gantt)
    /// and [`drift_report`](Self::drift_report).
    /// The design must pass [`diagnose`](Self::diagnose) with no errors.
    pub fn run_with(
        &mut self,
        inputs: &BTreeMap<String, Value>,
        options: &ExecOptions,
    ) -> Result<ExecReport, ProjectError> {
        self.gate()?;
        self.flatten()?;
        let f = self.flattened_ref()?;
        Ok(execute(f, &self.library, inputs, options)?)
    }

    /// Opens a persistent [`Session`] on the design: routing tables,
    /// compiled programs, the slab store, and a parked worker pool all
    /// survive across [`Session::run`] firings, so repeated executions
    /// (parameter sweeps, convergence loops, `banger run --repeat N`)
    /// pay the setup once. Greedy mode only.
    /// The design must pass [`diagnose`](Self::diagnose) with no errors.
    pub fn session(&mut self, options: &ExecOptions) -> Result<Session, ProjectError> {
        self.gate()?;
        self.flatten()?;
        let f = self.flattened_ref()?;
        Ok(Session::new(f, &self.library, options)?)
    }

    /// Renders a traced execution's *observed* timeline as an ASCII
    /// Gantt chart — same renderer and task labels as the predicted
    /// [`gantt`](Self::gantt), rows are worker threads, time is
    /// wall-clock seconds.
    pub fn observed_gantt(&mut self, trace: &Trace) -> Result<String, ProjectError> {
        let f = self.flatten()?;
        let g = &f.graph;
        let observed = trace.observed_schedule(g.task_count());
        Ok(gantt::render(
            &observed,
            trace.workers,
            |t| short_name(&g.task(t).name),
            GanttOptions::default(),
        ))
    }

    /// Joins a predicted schedule against a traced execution: the
    /// prediction is refined through the message-accurate simulator when
    /// possible (falling back to the schedule's own placements), and the
    /// [`DriftReport`] compares per-task start/finish times and the
    /// makespan under a global unit fit (see `banger_trace`).
    pub fn drift_report(
        &mut self,
        schedule: &Schedule,
        trace: &Trace,
    ) -> Result<DriftReport, ProjectError> {
        let predicted = match self.simulate(schedule) {
            Ok(sim) => sim.achieved,
            Err(_) => schedule.clone(),
        };
        Ok(DriftReport::new(&predicted, trace))
    }

    /// Predicts speedup of the design across machines built from the given
    /// topologies with the supplied parameters (paper Figure 3, right).
    /// Uses the MH scheduler (PPSE's flagship). The per-topology runs are
    /// independent and fan out across worker threads
    /// ([`banger_sched::sweep`]); results are identical to the sequential
    /// loop and come back in `topologies` order.
    pub fn predict_speedup(
        &mut self,
        topologies: &[Topology],
        params: MachineParams,
    ) -> Result<Vec<SpeedupPoint>, ProjectError> {
        self.flatten()?;
        let g = &self.flattened_ref()?.graph;
        let machines: Vec<Machine> = topologies
            .iter()
            .map(|topo| Machine::new(topo.clone(), params))
            .collect();
        let schedules = banger_sched::sweep::sweep_machines("MH", g, &machines)
            .ok_or_else(|| ProjectError::UnknownHeuristic("MH".to_string()))?;
        Ok(machines
            .iter()
            .zip(schedules)
            .map(|(m, s)| SpeedupPoint {
                processors: m.processors(),
                speedup: s.speedup(g, m),
            })
            .collect())
    }

    /// Runs every heuristic and summarises the results, sorted best-first.
    /// The runs fan out across worker threads with a shared graph analysis;
    /// the table is identical to the sequential loop's.
    pub fn compare_heuristics(&mut self) -> Result<Vec<ScheduleSummary>, ProjectError> {
        self.flatten()?;
        let m = self.machine.as_ref().ok_or(ProjectError::NoMachine)?;
        let g = &self.flattened_ref()?.graph;
        let names: Vec<&str> = banger_sched::HEURISTIC_NAMES
            .iter()
            .chain(["DSH"].iter())
            .copied()
            .collect();
        let mut rows = Vec::with_capacity(names.len());
        for (name, s) in names
            .iter()
            .zip(banger_sched::sweep::sweep_heuristics(&names, g, m))
        {
            let s = s.ok_or_else(|| ProjectError::UnknownHeuristic(name.to_string()))?;
            rows.push(s.summarize(g, m));
        }
        rows.sort_by(|a, b| a.makespan.total_cmp(&b.makespan));
        Ok(rows)
    }

    /// Machine-space search (guidance for the paper's "define a target
    /// machine" step): evaluates the design on the standard candidate
    /// machines up to `max_procs` processors — all Figure 2 topologies —
    /// and returns the outcomes best-first. The candidates are scheduled
    /// in parallel; the ranking is deterministic.
    pub fn recommend_machine(
        &mut self,
        max_procs: usize,
        params: MachineParams,
    ) -> Result<Vec<crate::advisor::MachineChoice>, ProjectError> {
        self.flatten()?;
        let g = &self.flattened_ref()?.graph;
        let candidates = crate::advisor::standard_candidates(max_procs, params);
        Ok(crate::advisor::search_machines(g, &candidates))
    }

    /// Expands a top-level reduction task into `chunks` parallel chunk
    /// tasks plus a combiner — the paper's "machine-independent
    /// data-parallel constructs" future work. The task's program must
    /// match the reduction shape recognised by
    /// [`banger_calc::transform::parallelize_reduction`]; the design node
    /// is replaced in place (arcs stay attached) and the new programs are
    /// registered in the library. Returns the names of the chunk programs.
    pub fn parallelize_task(
        &mut self,
        task_name: &str,
        chunks: usize,
    ) -> Result<Vec<String>, ProjectError> {
        use banger_taskgraph::NodeKind;
        // Find the top-level task node and its program.
        let (node_id, weight, prog_name) = self
            .design
            .nodes()
            .find_map(|(id, n)| match &n.kind {
                NodeKind::Task {
                    weight,
                    program: Some(p),
                } if n.name == task_name => Some((id, *weight, p.clone())),
                _ => None,
            })
            .ok_or_else(|| ProjectError::UnknownProgram(task_name.to_string()))?;
        let prog = self
            .library
            .get(&prog_name)
            .ok_or_else(|| ProjectError::UnknownProgram(prog_name.clone()))?
            .clone();
        let split = banger_calc::transform::parallelize_reduction(&prog, chunks).map_err(|e| {
            ProjectError::Graph(banger_taskgraph::GraphError::BadExpansion(format!(
                "cannot parallelize {task_name:?}: {e}"
            )))
        })?;

        // Build the expansion: chunk tasks feeding a combiner.
        let mut inner = HierGraph::new(format!("{task_name}-par"));
        let combine_name = split.combine.name.clone();
        let combine_id = inner.add_task_with_program(
            "combine",
            (weight / chunks as f64).max(1.0),
            combine_name.clone(),
        );
        let mut chunk_ids = Vec::with_capacity(chunks);
        let mut chunk_names = Vec::with_capacity(chunks);
        for (c, chunk) in split.chunks.iter().enumerate() {
            let id = inner.add_task_with_program(
                format!("chunk{c}"),
                weight / chunks as f64,
                chunk.name.clone(),
            );
            inner
                .add_arc(id, combine_id, split.partials[c].clone(), 1.0)
                .map_err(ProjectError::Graph)?;
            chunk_ids.push(id);
            chunk_names.push(chunk.name.clone());
        }

        // Port bindings: every incoming arc label feeds all chunks (and
        // the combiner when it consumes the input, e.g. for the init or
        // postlude); every outgoing arc label leaves the combiner.
        let mut inputs: std::collections::BTreeMap<String, Vec<banger_taskgraph::HierNodeId>> =
            std::collections::BTreeMap::new();
        let mut outputs: std::collections::BTreeMap<String, Vec<banger_taskgraph::HierNodeId>> =
            std::collections::BTreeMap::new();
        for arc in self.design.arcs() {
            if arc.dst == node_id {
                let mut sinks = chunk_ids.clone();
                if split.combine.inputs.iter().any(|v| v == &arc.label) {
                    sinks.push(combine_id);
                }
                inputs.insert(arc.label.clone(), sinks);
            }
            if arc.src == node_id {
                outputs.insert(arc.label.clone(), vec![combine_id]);
            }
        }

        self.design
            .replace_task_with_compound(node_id, inner, inputs, outputs)
            .map_err(ProjectError::Graph)?;
        self.flattened = None;
        self.invalidate_diagnostics();

        // Register the generated programs.
        for chunk in split.chunks {
            self.library.add(chunk);
        }
        self.library.add(split.combine);
        Ok(chunk_names)
    }

    /// Runs the graph-rewrite optimizer over the design: dead-arc /
    /// dead-port elimination always, task fusion when `fuse` is set.
    ///
    /// The design must pass [`diagnose`](Self::diagnose) with no errors
    /// first — the rewrites assume the router bindings the analyzer
    /// checks for. On success the project's design is *replaced* by the
    /// optimised, flattened-out equivalent (storage sizes carried over
    /// from the original) and the library by the rewritten programs.
    /// Both passes preserve Outcomes exactly: output values, print
    /// output and total interpreter operation counts are unchanged.
    pub fn optimize(&mut self, fuse: bool) -> Result<OptimizeStats, ProjectError> {
        self.gate()?;
        self.flatten()?;
        let flat = self.flattened_ref()?;

        let (after_dce, lib, dce) = banger_opt::eliminate_dead(flat, &self.library)?;
        let (flat, lib, fuse_stats) = if fuse {
            let (f, l, s) = banger_opt::fuse(&after_dce, &lib)?;
            (f, l, Some(s))
        } else {
            (after_dce, lib, None)
        };

        // Carry the drawn storage sizes over to the rebuilt design so
        // the scheduler's communication model is unchanged.
        fn storage_sizes(g: &HierGraph, out: &mut BTreeMap<String, f64>) {
            use banger_taskgraph::NodeKind;
            for (_, node) in g.nodes() {
                match &node.kind {
                    NodeKind::Storage { size } => {
                        out.entry(node.name.clone()).or_insert(*size);
                    }
                    NodeKind::Compound { expansion, .. } => storage_sizes(expansion, out),
                    NodeKind::Task { .. } => {}
                }
            }
        }
        let mut sizes = BTreeMap::new();
        storage_sizes(&self.design, &mut sizes);

        self.design = banger_opt::flat_to_design(&self.name, &flat, &sizes)?;
        self.library = lib;
        self.flattened = None;
        self.invalidate_diagnostics();
        // The rewritten design must re-pass the analyzer; a failure here
        // is an optimizer bug and is surfaced loudly rather than hidden.
        self.gate()?;
        Ok(OptimizeStats {
            dce,
            fuse: fuse_stats,
        })
    }

    /// Expands a dense-LU template task into a tiled block-LU compound
    /// with `tiles`×`tiles` blocks (see
    /// [`banger_opt::expand_dense_lu`]). The replacement is
    /// value-preserving: every floating-point operation runs in the same
    /// order on the same operands, so the factor is bit-identical.
    pub fn expand_task(
        &mut self,
        task: &str,
        tiles: usize,
    ) -> Result<banger_opt::ExpandStats, ProjectError> {
        let stats = banger_opt::expand_dense_lu(&mut self.design, task, &mut self.library, tiles)?;
        self.flattened = None;
        self.invalidate_diagnostics();
        Ok(stats)
    }

    /// Generates a self-contained Rust message-passing program for the
    /// scheduled design with concrete inputs.
    pub fn generate_rust(
        &mut self,
        schedule: &Schedule,
        inputs: &BTreeMap<String, Value>,
    ) -> Result<String, ProjectError> {
        self.gate()?;
        self.flatten()?;
        let f = self.flattened_ref()?;
        Ok(banger_codegen::generate_rust(
            f,
            &self.library,
            schedule,
            inputs,
        )?)
    }

    /// Generates an MPI-style C program for the scheduled design.
    pub fn generate_c(
        &mut self,
        schedule: &Schedule,
        inputs: &BTreeMap<String, Value>,
    ) -> Result<String, ProjectError> {
        self.gate()?;
        self.flatten()?;
        let f = self.flattened_ref()?;
        Ok(banger_codegen::generate_c(
            f,
            &self.library,
            schedule,
            inputs,
        )?)
    }
}

/// Shortens a qualified task name for Gantt labels (`Factor.fan1` ->
/// `fan1`).
pub fn short_name(qualified: &str) -> String {
    qualified
        .rsplit('.')
        .next()
        .unwrap_or(qualified)
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::{lu_inputs, lu_program_library, solve_reference, test_system};
    use banger_taskgraph::generators;

    fn lu_project(n: usize) -> Project {
        let mut p = Project::new(format!("lu{n}"), generators::lu_hierarchical(n));
        *p.library_mut() = lu_program_library(n);
        p.set_machine(Machine::new(
            Topology::hypercube(2),
            MachineParams::default(),
        ));
        p
    }

    #[test]
    fn full_workflow() {
        let mut p = lu_project(3);
        // Step 1+3 done (design + programs); step 2: machine set.
        let s = p.schedule("MH").unwrap();
        let g = p.flatten().unwrap().graph.clone();
        s.validate(&g, p.machine().unwrap()).unwrap();
        // Gantt renders.
        let gantt = p.gantt(&s).unwrap();
        assert!(gantt.contains("P0"));
        assert!(gantt.contains("fan1"), "{gantt}");
        // Simulation runs.
        let sim = p.simulate(&s).unwrap();
        assert!(sim.achieved_makespan() > 0.0);
        // Real execution solves the system.
        let (a, b) = test_system(3);
        let report = p.run(&lu_inputs(&a, &b)).unwrap();
        let got = report.outputs["x"].as_array("x").unwrap();
        let want = solve_reference(&a, &b);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn scheduled_execution_matches_greedy() {
        let mut p = lu_project(3);
        let s = p.schedule("ETF").unwrap();
        let (a, b) = test_system(3);
        let greedy = p.run(&lu_inputs(&a, &b)).unwrap();
        let pinned = p.run_scheduled(&s, &lu_inputs(&a, &b)).unwrap();
        assert_eq!(greedy.outputs, pinned.outputs);
    }

    #[test]
    fn trial_run_single_task() {
        let p = lu_project(3);
        let (a, _) = test_system(3);
        let out = p
            .trial_run(
                "fan1",
                &[("A".to_string(), Value::array(a))].into_iter().collect(),
            )
            .unwrap();
        assert!(out.outputs.contains_key("l1"));
        assert!(out.ops > 0);
        assert!(matches!(
            p.trial_run("nosuch", &BTreeMap::new()),
            Err(ProjectError::UnknownProgram(_))
        ));
    }

    #[test]
    fn trial_run_reference_mode_matches_vm() {
        let p = lu_project(3);
        let (a, _) = test_system(3);
        let inputs: BTreeMap<String, Value> =
            [("A".to_string(), Value::array(a))].into_iter().collect();
        let vm = p.trial_run("fan1", &inputs).unwrap();
        let tree = p
            .trial_run_with(
                "fan1",
                &inputs,
                InterpConfig {
                    reference: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(vm, tree, "engines must agree outcome-for-outcome");
    }

    #[test]
    fn no_machine_error() {
        let mut p = Project::new("x", generators::lu_hierarchical(2));
        assert!(matches!(p.schedule("MH"), Err(ProjectError::NoMachine)));
    }

    #[test]
    fn unknown_heuristic_error() {
        let mut p = lu_project(2);
        assert!(matches!(
            p.schedule("MAGIC"),
            Err(ProjectError::UnknownHeuristic(_))
        ));
    }

    #[test]
    fn speedup_prediction_monotone_for_lu() {
        let mut p = lu_project(4);
        let pts = p
            .predict_speedup(
                &[
                    Topology::single(),
                    Topology::hypercube(1),
                    Topology::hypercube(2),
                    Topology::hypercube(3),
                ],
                MachineParams {
                    msg_startup: 0.2,
                    transmission_rate: 8.0,
                    ..MachineParams::default()
                },
            )
            .unwrap();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].processors, 1);
        assert!((pts[0].speedup - 1.0).abs() < 1e-9);
        for w in pts.windows(2) {
            assert!(w[1].speedup >= w[0].speedup - 1e-9, "{:?}", pts);
        }
    }

    #[test]
    fn heuristic_comparison_sorted() {
        let mut p = lu_project(4);
        let rows = p.compare_heuristics().unwrap();
        assert_eq!(rows.len(), 8);
        for w in rows.windows(2) {
            assert!(w[0].makespan <= w[1].makespan);
        }
        // serial must be in the list and never the best on 4 procs for LU.
        assert!(rows.iter().any(|r| r.heuristic == "serial"));
    }

    #[test]
    fn machine_recommendation_ranked() {
        let mut p = lu_project(4);
        let rows = p
            .recommend_machine(
                8,
                MachineParams {
                    msg_startup: 0.2,
                    transmission_rate: 8.0,
                    ..MachineParams::default()
                },
            )
            .unwrap();
        assert!(rows.len() > 4);
        for w in rows.windows(2) {
            assert!(w[0].makespan <= w[1].makespan + 1e-12);
        }
        // A parallel machine must beat the single processor for LU-4.
        assert!(rows[0].processors > 1, "{rows:?}");
    }

    #[test]
    fn optimize_preserves_lu_outcomes_exactly() {
        let (a, b) = test_system(4);
        let inputs = lu_inputs(&a, &b);
        let mut base = lu_project(4);
        let want = base.run(&inputs).unwrap();

        let mut fused = lu_project(4);
        let stats = fused.optimize(true).unwrap();
        assert!(stats.fuse.is_some());
        let got = fused.run(&inputs).unwrap();
        assert_eq!(want.outputs, got.outputs);
        assert_eq!(
            want.total_ops(),
            got.total_ops(),
            "fusion must preserve operation counts exactly"
        );

        // The optimised design still schedules and pins.
        let s = fused.schedule("ETF").unwrap();
        let pinned = fused.run_scheduled(&s, &inputs).unwrap();
        assert_eq!(want.outputs, pinned.outputs);
    }

    /// A single dense-LU template task: storage `a` -> task -> storage `lu`.
    fn dense_lu_project(n: usize) -> Project {
        let mut design = HierGraph::new("dense");
        let s_in = design.add_storage("a", (n * n) as f64);
        let t = design.add_task_with_program("fact", (n * n * n) as f64, "DenseLU");
        let s_out = design.add_storage("lu", (n * n) as f64);
        design.add_flow(s_in, t).unwrap();
        design.add_flow(t, s_out).unwrap();
        let mut p = Project::new("dense", design);
        p.library_mut()
            .add(banger_opt::dense_lu_program("DenseLU", "a", "lu", n));
        p.set_machine(Machine::new(
            Topology::hypercube(2),
            MachineParams::default(),
        ));
        p
    }

    #[test]
    fn expand_task_is_bit_identical_end_to_end() {
        let n = 8;
        let (a, _) = test_system(n);
        let inputs: BTreeMap<String, Value> =
            [("a".to_string(), Value::array(a))].into_iter().collect();

        let mut dense = dense_lu_project(n);
        let want = dense.run(&inputs).unwrap();

        let mut tiled = dense_lu_project(n);
        let stats = tiled.expand_task("fact", 2).unwrap();
        assert_eq!(stats.tiles, 2);
        tiled.optimize(false).unwrap();
        assert!(tiled.flatten().unwrap().graph.task_count() > 10);
        let got = tiled.run(&inputs).unwrap();

        let w = want.outputs["lu"].as_array("lu").unwrap();
        let g = got.outputs["lu"].as_array("lu").unwrap();
        assert_eq!(w.len(), g.len());
        for (x, y) in w.iter().zip(g.iter()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "tiled factor must be bit-identical"
            );
        }
    }

    #[test]
    fn calibrate_from_programs_updates_weights() {
        let mut p = lu_project(3);
        let before = p.flatten().unwrap().graph.total_weight();
        let updated = p.calibrate_from_programs().unwrap();
        assert_eq!(updated, p.flatten().unwrap().graph.task_count());
        let after = p.flatten().unwrap().graph.total_weight();
        assert_ne!(
            before, after,
            "static cost estimates should differ from the generator's nominal weights"
        );
    }

    /// A one-task serial design computing pi by quadrature.
    fn serial_pi_project() -> Project {
        let mut design = HierGraph::new("pi");
        let n = design.add_storage("n", 1.0);
        let t = design.add_task_with_program("quad", 800.0, "Pi");
        let out = design.add_storage("p", 1.0);
        design.add_flow(n, t).unwrap();
        design.add_flow(t, out).unwrap();
        let mut p = Project::new("pi", design);
        p.library_mut()
            .add_source(
                "task Pi
                   in n
                   out p
                   local i, x, h
                 begin
                   h := 1 / n
                   p := 0
                   for i := 1 to n do
                     x := (i - 0.5) * h
                     p := p + 4 / (1 + x * x)
                   end
                   p := p * h
                 end",
            )
            .unwrap();
        p.set_machine(Machine::new(
            Topology::fully_connected(8),
            MachineParams::default(),
        ));
        p
    }

    #[test]
    fn parallelize_task_preserves_results_and_gains_speedup() {
        let inputs: BTreeMap<String, Value> = [("n".to_string(), Value::Num(10_000.0))]
            .into_iter()
            .collect();

        let mut serial = serial_pi_project();
        let serial_ms = serial.schedule("MH").unwrap().makespan();
        let serial_out = serial.run(&inputs).unwrap().outputs["p"].clone();

        let mut par = serial_pi_project();
        let chunk_names = par.parallelize_task("quad", 8).unwrap();
        assert_eq!(chunk_names.len(), 8);
        assert_eq!(par.design().depth(), 2, "task became a compound");

        // Same numeric answer.
        let par_out = par.run(&inputs).unwrap().outputs["p"].clone();
        let (s, q) = (
            serial_out.as_num("p").unwrap(),
            par_out.as_num("p").unwrap(),
        );
        assert!((s - q).abs() < 1e-9, "{s} vs {q}");
        assert!((q - std::f64::consts::PI).abs() < 1e-6);

        // The scheduler can now spread the chunks: much shorter makespan.
        let par_sched = par.schedule("MH").unwrap();
        let g = par.flatten().unwrap().graph.clone();
        par_sched.validate(&g, par.machine().unwrap()).unwrap();
        assert!(
            par_sched.makespan() < 0.3 * serial_ms,
            "parallel {} vs serial {serial_ms}",
            par_sched.makespan()
        );
    }

    #[test]
    fn parallelize_task_errors() {
        let mut p = serial_pi_project();
        assert!(matches!(
            p.parallelize_task("nosuch", 4),
            Err(ProjectError::UnknownProgram(_))
        ));
        // Non-reduction task is rejected with a graph error.
        p.library_mut()
            .add_source("task Plain in n out p begin p := n end")
            .unwrap();
        let t = p.design_mut().add_task_with_program("plain", 5.0, "Plain");
        let _ = t;
        assert!(matches!(
            p.parallelize_task("plain", 4),
            Err(ProjectError::Graph(_))
        ));
    }

    #[test]
    fn traced_run_drives_observed_gantt_and_drift() {
        let mut p = lu_project(3);
        let s = p.schedule("MH").unwrap();
        let (a, b) = test_system(3);
        let report = p
            .run_with(
                &lu_inputs(&a, &b),
                &ExecOptions {
                    mode: ExecMode::pinned(s.clone()),
                    trace: true,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
        // Same answer as the untraced path.
        let got = report.outputs["x"].as_array("x").unwrap().to_vec();
        let want = solve_reference(&a, &b);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
        let trace = report.trace.expect("trace recorded");
        let observed = p.observed_gantt(&trace).unwrap();
        assert!(observed.contains("P0"), "{observed}");
        // Task labels appear iff their bars are wide enough — timing
        // dependent, so only assert the chart's observed header.
        assert!(observed.contains("observed"), "{observed}");
        let drift = p.drift_report(&s, &trace).unwrap();
        assert_eq!(
            drift.tasks.len(),
            p.flatten().unwrap().graph.task_count(),
            "every task has a drift row"
        );
        assert!(drift.predicted_makespan > 0.0);
        assert!(drift.observed_makespan > 0.0);
        let text = drift.render(|t| format!("t{}", t.0));
        assert!(text.contains("makespan"), "{text}");
    }

    #[test]
    fn codegen_paths() {
        let mut p = lu_project(2);
        let s = p.schedule("MH").unwrap();
        let (a, b) = test_system(2);
        let rust = p.generate_rust(&s, &lu_inputs(&a, &b)).unwrap();
        assert!(rust.contains("fn main()"));
        let c = p.generate_c(&s, &lu_inputs(&a, &b)).unwrap();
        assert!(c.contains("MPI_Init"));
    }

    #[test]
    fn weight_report_compares_static_and_measured() {
        let mut p = lu_project(3);
        let (a, b) = test_system(3);
        let report = p.run(&lu_inputs(&a, &b)).unwrap();
        let rows = p.weight_report(Some(&report)).unwrap();
        assert_eq!(rows.len(), p.flatten().unwrap().graph.task_count());
        for r in &rows {
            let c = r.cost.as_ref().expect("every LU task has a program");
            let m = r.measured.expect("every LU task ran");
            assert!(
                c.ops_lo <= m && (c.ops_hi.is_infinite() || m <= c.ops_hi),
                "{}: measured {m} outside [{}, {}]",
                r.task,
                c.ops_lo,
                c.ops_hi
            );
            // LU bodies are straight loops over literal bounds: the
            // abstract interpreter must predict the trial count exactly.
            assert!(c.exact, "{}: {c:?}", r.task);
            assert_eq!(c.est, m, "{}: static {} vs measured {m}", r.task, c.est);
        }
        // Without a report the measured column is absent.
        let rows = p.weight_report(None).unwrap();
        assert!(rows.iter().all(|r| r.measured.is_none()));
    }

    #[test]
    fn weight_rendering() {
        let rows = vec![
            WeightRow {
                task: "Factor.fan1".to_string(),
                program: Some("fan1".to_string()),
                drawn: 9.0,
                cost: Some(banger_calc::absint::StaticCost {
                    ops_lo: 115.0,
                    ops_hi: 115.0,
                    est: 115.0,
                    exact: true,
                }),
                measured: Some(115.0),
            },
            WeightRow {
                task: "sink".to_string(),
                program: None,
                drawn: 1.0,
                cost: None,
                measured: None,
            },
        ];
        let text = render_weight_table(&rows);
        assert!(text.contains("Factor.fan1"), "{text}");
        assert!(text.contains("(exact)"), "{text}");
        let json = weight_rows_json(&rows);
        assert!(json.contains("\"task\": \"Factor.fan1\""), "{json}");
        assert!(json.contains("\"exact\": true"), "{json}");
        assert!(json.contains("\"static\": null"), "{json}");
        assert!(json.contains("\"measured\": null"), "{json}");
        // Unbounded upper bounds serialize as null, not inf.
        let unbounded = vec![WeightRow {
            task: "t".to_string(),
            program: Some("p".to_string()),
            drawn: 1.0,
            cost: Some(banger_calc::absint::StaticCost {
                ops_lo: 2.0,
                ops_hi: f64::INFINITY,
                est: 32.0,
                exact: false,
            }),
            measured: None,
        }];
        let json = weight_rows_json(&unbounded);
        assert!(json.contains("\"ops_hi\": null"), "{json}");
        assert_eq!(weight_rows_json(&[]), "[]");
    }

    #[test]
    fn short_names() {
        assert_eq!(short_name("Factor.fan1"), "fan1");
        assert_eq!(short_name("plain"), "plain");
        assert_eq!(short_name("A.B.C.deep"), "deep");
    }
}
