#![warn(missing_docs)]

//! # banger — the environment facade
//!
//! A faithful, headless re-implementation of **Banger** (Lewis, ICPP
//! 1994): a large-grain parallel programming environment for
//! non-programmers. The paper's four-step workflow maps directly onto
//! this crate:
//!
//! 1. **Draw a hierarchical dataflow graph** —
//!    [`banger_taskgraph::HierGraph`], wrapped in a [`Project`];
//! 2. **Define a target machine** — [`banger_machine::Machine`], via
//!    [`Project::set_machine`];
//! 3. **Specify algorithms as small sequential tasks** — PITS programs in
//!    the project's [`banger_calc::ProgramLibrary`], written by hand or by
//!    pressing calculator-panel buttons;
//! 4. **Generate the code** — [`Project::generate_rust`] /
//!    [`Project::generate_c`]; or skip codegen and [`Project::run`] the
//!    design directly on host threads.
//!
//! Instant feedback comes from [`Project::trial_run`] (single task),
//! [`Project::simulate`] (whole program, message-accurate),
//! [`Project::gantt`] and the speedup charts.
//!
//! The [`figures`] module regenerates each figure of the paper; see
//! EXPERIMENTS.md at the workspace root for the paper-vs-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use banger::figures;
//! use banger::project::Project;
//! use banger_machine::{Machine, MachineParams, Topology};
//!
//! // The paper's running example: LU decomposition of a 3x3 system.
//! let mut project = figures::lu_project(
//!     3,
//!     Machine::new(Topology::hypercube(2), MachineParams::default()),
//! );
//! let schedule = project.schedule("MH").unwrap();
//! println!("{}", project.gantt(&schedule).unwrap());
//! ```

pub mod advisor;
pub mod animate;
pub mod chart;
pub mod document;
pub mod figures;
pub mod gantt;
pub mod lu;
pub mod project;
#[cfg(unix)]
pub mod serve;
pub mod svg;

pub use banger_analyze as analyze;
pub use banger_trace as trace;
pub use chart::{bar_chart, speedup_chart, SpeedupPoint};
pub use document::{parse_project, print_project, DocError};
pub use gantt::GanttOptions;
pub use project::{render_weight_table, weight_rows_json, Project, ProjectError, WeightRow};
