//! The schedule advisor: explains *why* a schedule is as long as it is
//! and what a non-programmer could do about it — the kind of instant,
//! actionable feedback the paper argues is "a major contributor to early
//! defect removal".
//!
//! Given a design, machine and schedule, the advisor reports:
//!
//! * overall efficiency and per-processor utilisation;
//! * the **binding chain**: walking back from the last-finishing task,
//!   what each step was waiting on (a message, the processor, or nothing
//!   — pure computation);
//! * time lost to communication vs. computation along that chain;
//! * the heaviest individual messages;
//! * targeted suggestions (pack grains, duplicate, use fewer processors,
//!   upgrade the network) keyed on what actually dominates.

use banger_machine::{Machine, MachineParams, ProcId, Topology};
use banger_sched::{Placement, Schedule};
use banger_taskgraph::{TaskGraph, TaskId};
use std::fmt::Write as _;

/// Why a placement started when it did.
#[derive(Debug, Clone, PartialEq)]
pub enum StartReason {
    /// First work of the run: nothing constrained it.
    Free,
    /// Waiting for the processor to finish its previous task.
    Processor {
        /// The task occupying the processor until this one's start.
        previous: TaskId,
    },
    /// Waiting for data from a predecessor on another processor.
    Message {
        /// The producing task.
        from: TaskId,
        /// The producer's processor.
        proc: ProcId,
        /// The communication delay paid (arrival - producer finish).
        delay: f64,
    },
    /// Waiting for a same-processor predecessor to finish.
    LocalData {
        /// The producing task.
        from: TaskId,
    },
}

/// One step of the binding chain (latest-finishing placement backwards).
#[derive(Debug, Clone, PartialEq)]
pub struct ChainStep {
    /// The placement.
    pub placement: Placement,
    /// What it waited on.
    pub reason: StartReason,
}

/// The advisor's structured result.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// Speedup over the single-fastest-processor baseline.
    pub speedup: f64,
    /// Efficiency (speedup / processors).
    pub efficiency: f64,
    /// Per-processor busy fraction.
    pub utilization: Vec<f64>,
    /// The binding chain, last task first.
    pub chain: Vec<ChainStep>,
    /// Total communication delay on the chain.
    pub chain_comm: f64,
    /// Total computation on the chain.
    pub chain_compute: f64,
    /// Heaviest messages: `(src task, dst task, comm time)`.
    pub heavy_messages: Vec<(TaskId, TaskId, f64)>,
    /// Human-readable suggestions.
    pub suggestions: Vec<String>,
}

/// Analyses a schedule. The schedule must be valid for `g` on `m`.
pub fn advise(g: &TaskGraph, m: &Machine, s: &Schedule) -> Advice {
    let makespan = s.makespan().max(1e-12);
    let utilization: Vec<f64> = m.proc_ids().map(|p| s.busy_time(p) / makespan).collect();
    let speedup = s.speedup(g, m);
    let efficiency = s.efficiency(g, m);

    // --- binding chain -------------------------------------------------
    let mut chain = Vec::new();
    let mut chain_comm = 0.0;
    let mut chain_compute = 0.0;
    let mut cursor: Option<Placement> = s
        .placements()
        .iter()
        .max_by(|a, b| a.finish.total_cmp(&b.finish))
        .copied();
    let eps = 1e-6;
    while let Some(pl) = cursor {
        chain_compute += pl.finish - pl.start;
        // What bound the start time?
        let mut reason = StartReason::Free;
        let mut next: Option<Placement> = None;
        // Processor predecessor ending at exactly our start?
        if let Some(prev) = s
            .on_processor(pl.proc)
            .into_iter()
            .filter(|q| q.finish <= pl.start + eps && !(q.task == pl.task && q.start == pl.start))
            .max_by(|a, b| a.finish.total_cmp(&b.finish))
        {
            if (prev.finish - pl.start).abs() <= eps {
                reason = StartReason::Processor {
                    previous: prev.task,
                };
                next = Some(*prev);
            }
        }
        // A data arrival at exactly our start beats the processor reason
        // (it explains more: the processor may merely have been free).
        for &e in g.in_edges(pl.task) {
            let edge = g.edge(e);
            for src in s.placements_of(edge.src) {
                let arrival = src.finish + m.comm_time(src.proc, pl.proc, edge.volume);
                if (arrival - pl.start).abs() <= eps {
                    if src.proc == pl.proc {
                        reason = StartReason::LocalData { from: edge.src };
                    } else {
                        let delay = arrival - src.finish;
                        chain_comm += delay;
                        reason = StartReason::Message {
                            from: edge.src,
                            proc: src.proc,
                            delay,
                        };
                    }
                    next = Some(*src);
                    break;
                }
            }
            if !matches!(reason, StartReason::Free | StartReason::Processor { .. }) {
                break;
            }
        }
        chain.push(ChainStep {
            placement: pl,
            reason: reason.clone(),
        });
        if matches!(reason, StartReason::Free) || chain.len() > g.task_count() * 2 {
            break;
        }
        cursor = next;
    }

    // --- heavy messages --------------------------------------------------
    let mut heavy: Vec<(TaskId, TaskId, f64)> = Vec::new();
    for (_, edge) in g.edges() {
        if let (Some(sp), Some(dp)) = (s.primary(edge.src), s.primary(edge.dst)) {
            let cost = m.comm_time(sp.proc, dp.proc, edge.volume);
            if cost > 0.0 {
                heavy.push((edge.src, edge.dst, cost));
            }
        }
    }
    heavy.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
    heavy.truncate(5);

    // --- suggestions -------------------------------------------------------
    let mut suggestions = Vec::new();
    let used = s.processors_used();
    let avg_par = banger_taskgraph::analysis::average_parallelism(g);
    if (avg_par - speedup).abs() < 0.15 * avg_par {
        suggestions.push(format!(
            "the schedule is at the design's parallelism ceiling ({avg_par:.2}); \
             only restructuring the design (smaller grains, fewer chains) can go faster"
        ));
    }
    if used < m.processors() {
        suggestions.push(format!(
            "only {used} of {} processors are used — a smaller machine gives the \
             same makespan",
            m.processors()
        ));
    }
    let comm_share = chain_comm / makespan;
    if comm_share > 0.25 {
        suggestions.push(format!(
            "{:.0}% of the critical chain is communication — consider grain \
             packing, task duplication (DSH) or a better-connected topology",
            100.0 * comm_share
        ));
    }
    if m.params().process_startup > 0.0 {
        let mean_exec = g.total_weight() / g.task_count() as f64 / m.params().processor_speed;
        if m.params().process_startup > 0.5 * mean_exec {
            suggestions.push(format!(
                "process startup ({}) rivals mean task time ({mean_exec:.2}) — pack \
                 grains before scheduling",
                m.params().process_startup
            ));
        }
    }
    if suggestions.is_empty() {
        suggestions.push("no structural bottleneck detected; the schedule is compute-bound".into());
    }

    Advice {
        speedup,
        efficiency,
        utilization,
        chain,
        chain_comm,
        chain_compute,
        heavy_messages: heavy,
        suggestions,
    }
}

/// One candidate machine's outcome in a machine-space search.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineChoice {
    /// Topology name (e.g. `hypercube-3`).
    pub topology: String,
    /// Processor count.
    pub processors: usize,
    /// MH makespan of the design on this machine.
    pub makespan: f64,
    /// Speedup over the single-fastest-processor baseline.
    pub speedup: f64,
    /// Efficiency (speedup / processors).
    pub efficiency: f64,
}

/// The Figure 2 topology family up to `max_procs` processors — the
/// candidate space a non-programmer would shop from.
pub fn standard_candidates(max_procs: usize, params: MachineParams) -> Vec<Machine> {
    let mut topos: Vec<Topology> = vec![Topology::single()];
    let mut dim = 1u32;
    while (1usize << dim) <= max_procs {
        topos.push(Topology::hypercube(dim));
        dim += 1;
    }
    for n in [4usize, 8, 16, 32, 64] {
        if n > max_procs {
            break;
        }
        topos.push(Topology::mesh(2, n / 2));
        topos.push(Topology::ring(n));
        topos.push(Topology::star(n));
        topos.push(Topology::fully_connected(n));
    }
    topos.into_iter().map(|t| Machine::new(t, params)).collect()
}

/// Machine-space search: schedules `g` with MH on every candidate machine
/// (fanned across worker threads via [`banger_sched::sweep`]) and ranks the
/// outcomes best-first — shortest makespan, then fewest processors, then
/// topology name. Deterministic: the ranking is a pure function of the
/// candidate list.
pub fn search_machines(g: &TaskGraph, candidates: &[Machine]) -> Vec<MachineChoice> {
    let schedules = banger_sched::sweep::sweep_machines("MH", g, candidates).expect("MH is known");
    let mut choices: Vec<MachineChoice> = candidates
        .iter()
        .zip(schedules)
        .map(|(m, s)| MachineChoice {
            topology: m.topology().name().to_string(),
            processors: m.processors(),
            makespan: s.makespan(),
            speedup: s.speedup(g, m),
            efficiency: s.efficiency(g, m),
        })
        .collect();
    choices.sort_by(|a, b| {
        a.makespan
            .total_cmp(&b.makespan)
            .then(a.processors.cmp(&b.processors))
            .then(a.topology.cmp(&b.topology))
    });
    choices
}

/// Renders a machine-space search as a table, best machine first.
pub fn render_machine_search(choices: &[MachineChoice]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>6} {:>10} {:>8} {:>6}",
        "machine", "procs", "makespan", "speedup", "eff"
    );
    for c in choices {
        let _ = writeln!(
            out,
            "{:<18} {:>6} {:>10.2} {:>7.2}x {:>5.0}%",
            c.topology,
            c.processors,
            c.makespan,
            c.speedup,
            100.0 * c.efficiency
        );
    }
    out
}

/// Renders advice as a human-readable report.
pub fn render(g: &TaskGraph, advice: &Advice) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Advisor — speedup {:.2}x, efficiency {:.0}%",
        advice.speedup,
        100.0 * advice.efficiency
    );
    let _ = write!(out, "utilisation:");
    for (p, u) in advice.utilization.iter().enumerate() {
        let _ = write!(out, " P{p}={:.0}%", 100.0 * u);
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "binding chain ({} steps, {:.1} compute + {:.1} communication):",
        advice.chain.len(),
        advice.chain_compute,
        advice.chain_comm
    );
    for step in &advice.chain {
        let name = crate::project::short_name(&g.task(step.placement.task).name);
        let why = match &step.reason {
            StartReason::Free => "started immediately".to_string(),
            StartReason::Processor { previous } => format!(
                "waited for processor (after {})",
                crate::project::short_name(&g.task(*previous).name)
            ),
            StartReason::Message { from, proc, delay } => format!(
                "waited {delay:.2} for message from {} (on {proc})",
                crate::project::short_name(&g.task(*from).name)
            ),
            StartReason::LocalData { from } => format!(
                "waited for local result of {}",
                crate::project::short_name(&g.task(*from).name)
            ),
        };
        let _ = writeln!(
            out,
            "  {name:<12} [{:.2}, {:.2}] on {} — {why}",
            step.placement.start, step.placement.finish, step.placement.proc
        );
    }
    if !advice.heavy_messages.is_empty() {
        let _ = writeln!(out, "heaviest messages:");
        for (src, dst, cost) in &advice.heavy_messages {
            let _ = writeln!(
                out,
                "  {} -> {}: {cost:.2}",
                crate::project::short_name(&g.task(*src).name),
                crate::project::short_name(&g.task(*dst).name)
            );
        }
    }
    let _ = writeln!(out, "suggestions:");
    for sug in &advice.suggestions {
        let _ = writeln!(out, "  * {sug}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_machine::{MachineParams, Topology};
    use banger_taskgraph::generators;

    #[test]
    fn chain_walks_back_to_a_free_start() {
        let g = generators::gauss_elimination(5, 2.0, 1.0);
        let m = Machine::new(Topology::hypercube(2), MachineParams::default());
        let s = banger_sched::mh::mh(&g, &m);
        let a = advise(&g, &m, &s);
        assert!(!a.chain.is_empty());
        // The chain ends with a Free start (an entry task at t=0).
        assert_eq!(a.chain.last().unwrap().reason, StartReason::Free);
        assert!(a.chain.last().unwrap().placement.start.abs() < 1e-9);
        // Chain compute + comm accounts for (at least close to) the makespan.
        assert!(
            a.chain_compute + a.chain_comm >= 0.95 * s.makespan(),
            "{} + {} vs {}",
            a.chain_compute,
            a.chain_comm,
            s.makespan()
        );
    }

    #[test]
    fn serial_design_hits_parallelism_ceiling() {
        let g = generators::chain(6, 5.0, 1.0);
        let m = Machine::new(Topology::fully_connected(4), MachineParams::default());
        let s = banger_sched::list::etf(&g, &m);
        let a = advise(&g, &m, &s);
        assert!(
            a.suggestions.iter().any(|x| x.contains("ceiling")),
            "{:?}",
            a.suggestions
        );
        assert!(
            a.suggestions.iter().any(|x| x.contains("smaller machine")),
            "{:?}",
            a.suggestions
        );
    }

    #[test]
    fn comm_heavy_design_triggers_comm_advice() {
        let mut g = generators::fork_join(4, 1.0, 2.0, 1.0, 1.0);
        g.scale_volumes(30.0);
        let m = Machine::new(Topology::fully_connected(4), MachineParams::default());
        // Force a communicating schedule with the naive heuristic.
        let s = banger_sched::list::naive_no_comm(&g, &m);
        let a = advise(&g, &m, &s);
        assert!(
            a.suggestions
                .iter()
                .any(|x| x.contains("communication") || x.contains("ceiling")),
            "{:?}",
            a.suggestions
        );
        assert!(!a.heavy_messages.is_empty());
    }

    #[test]
    fn startup_advice_when_grains_tiny() {
        let g = generators::lattice(4, 4, 0.5, 0.1);
        let m = Machine::new(
            Topology::hypercube(2),
            MachineParams {
                process_startup: 2.0,
                ..MachineParams::default()
            },
        );
        let s = banger_sched::list::etf(&g, &m);
        let a = advise(&g, &m, &s);
        assert!(
            a.suggestions.iter().any(|x| x.contains("startup")),
            "{:?}",
            a.suggestions
        );
    }

    #[test]
    fn machine_search_is_ranked_and_deterministic() {
        let g = generators::gauss_elimination(6, 2.0, 3.0);
        let candidates = standard_candidates(
            8,
            MachineParams {
                msg_startup: 0.5,
                ..MachineParams::default()
            },
        );
        let choices = search_machines(&g, &candidates);
        assert_eq!(choices.len(), candidates.len());
        for w in choices.windows(2) {
            assert!(w[0].makespan <= w[1].makespan + 1e-12);
        }
        // Bit-identical to a second (and a sequential) evaluation.
        assert_eq!(choices, search_machines(&g, &candidates));
        for c in &choices {
            let m = candidates
                .iter()
                .find(|m| m.topology().name() == c.topology)
                .unwrap();
            let s = banger_sched::mh::mh(&g, m);
            assert_eq!(c.makespan, s.makespan(), "{}", c.topology);
        }
        let table = render_machine_search(&choices);
        assert!(table.contains("makespan"));
        assert!(table.contains("single"));
    }

    #[test]
    fn standard_candidates_respect_budget() {
        let cands = standard_candidates(8, MachineParams::default());
        assert!(cands.iter().all(|m| m.processors() <= 8));
        assert!(cands.iter().any(|m| m.processors() == 8));
        assert_eq!(cands[0].processors(), 1);
    }

    #[test]
    fn render_is_complete() {
        let g = generators::gauss_elimination(4, 2.0, 1.0);
        let m = Machine::new(Topology::hypercube(2), MachineParams::default());
        let s = banger_sched::mh::mh(&g, &m);
        let a = advise(&g, &m, &s);
        let text = render(&g, &a);
        assert!(text.contains("Advisor"));
        assert!(text.contains("utilisation"));
        assert!(text.contains("binding chain"));
        assert!(text.contains("suggestions:"));
    }
}
