//! SVG rendering of Gantt charts and speedup curves — the publishable
//! form of Banger's graphical displays (Figure 3 showed screenshots; this
//! module produces the equivalent vector graphics with no external
//! dependencies).

use crate::chart::SpeedupPoint;
use crate::project::short_name;
use banger_machine::ProcId;
use banger_sched::Schedule;
use banger_taskgraph::TaskGraph;
use std::fmt::Write as _;

/// A small qualitative palette (hex RGB), cycled per task.
const PALETTE: [&str; 8] = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948", "#b07aa1", "#9c755f",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders a schedule as an SVG Gantt chart. Each processor is a row;
/// task blocks are coloured by task id and carry `<title>` tooltips with
/// exact times; duplicated copies get a dashed border.
pub fn gantt_svg(schedule: &Schedule, processors: usize, g: &TaskGraph) -> String {
    let makespan = schedule.makespan().max(1e-9);
    let width = 900.0;
    let row_h = 28.0;
    let left = 48.0;
    let top = 34.0;
    let chart_w = width - left - 16.0;
    let height = top + processors as f64 * row_h + 30.0;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="sans-serif" font-size="11">"#
    );
    let _ = writeln!(
        out,
        r#"<text x="{left}" y="18" font-size="13" font-weight="bold">Gantt chart — {} (makespan {:.3})</text>"#,
        esc(schedule.heuristic()),
        schedule.makespan()
    );
    // Row backgrounds + labels.
    for p in 0..processors {
        let y = top + p as f64 * row_h;
        let _ = writeln!(
            out,
            r##"<rect x="{left}" y="{y}" width="{chart_w}" height="{row_h}" fill="{}" stroke="#ddd"/>"##,
            if p % 2 == 0 { "#fafafa" } else { "#f0f0f0" }
        );
        let _ = writeln!(
            out,
            r#"<text x="8" y="{:.1}">P{p}</text>"#,
            y + row_h * 0.65
        );
    }
    // Task blocks.
    for pl in schedule.placements() {
        let y = top + pl.proc.index() as f64 * row_h + 3.0;
        let x = left + chart_w * pl.start / makespan;
        let w = (chart_w * (pl.finish - pl.start) / makespan).max(1.0);
        let color = PALETTE[pl.task.index() % PALETTE.len()];
        let dash = if pl.primary {
            ""
        } else {
            r#" stroke-dasharray="4 2""#
        };
        let name = short_name(&g.task(pl.task).name);
        let _ = writeln!(
            out,
            r##"<rect x="{x:.2}" y="{y:.1}" width="{w:.2}" height="{:.1}" fill="{color}" stroke="#333"{dash}><title>{} [{:.3}, {:.3}] on P{}</title></rect>"##,
            row_h - 6.0,
            esc(&name),
            pl.start,
            pl.finish,
            pl.proc.0
        );
        if w > 40.0 {
            let _ = writeln!(
                out,
                r##"<text x="{:.2}" y="{:.1}" fill="#fff">{}</text>"##,
                x + 4.0,
                y + (row_h - 6.0) * 0.7,
                esc(&name)
            );
        }
    }
    // Time axis.
    let axis_y = top + processors as f64 * row_h + 16.0;
    for i in 0..=4 {
        let t = makespan * i as f64 / 4.0;
        let x = left + chart_w * i as f64 / 4.0;
        let _ = writeln!(
            out,
            r##"<text x="{x:.1}" y="{axis_y}" text-anchor="middle" fill="#555">{t:.1}</text>"##
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Renders a speedup curve (with the ideal linear line) as SVG.
pub fn speedup_svg(title: &str, points: &[SpeedupPoint]) -> String {
    let width = 460.0;
    let height = 320.0;
    let left = 44.0;
    let bottom = height - 36.0;
    let top = 30.0;
    let right = width - 16.0;
    let max_p = points
        .iter()
        .map(|p| p.processors as f64)
        .fold(1.0f64, f64::max);

    let x_of = |procs: f64| left + (right - left) * procs / max_p;
    let y_of = |s: f64| bottom - (bottom - top) * s / max_p;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="sans-serif" font-size="11">"#
    );
    let _ = writeln!(
        out,
        r#"<text x="{left}" y="18" font-size="13" font-weight="bold">{}</text>"#,
        esc(title)
    );
    // Axes.
    let _ = writeln!(
        out,
        r##"<line x1="{left}" y1="{bottom}" x2="{right}" y2="{bottom}" stroke="#333"/>"##
    );
    let _ = writeln!(
        out,
        r##"<line x1="{left}" y1="{top}" x2="{left}" y2="{bottom}" stroke="#333"/>"##
    );
    // Ideal line.
    let _ = writeln!(
        out,
        r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#bbb" stroke-dasharray="5 4"/>"##,
        x_of(0.0),
        y_of(0.0),
        x_of(max_p),
        y_of(max_p)
    );
    // Curve.
    if !points.is_empty() {
        let path: Vec<String> = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                format!(
                    "{}{:.1},{:.1}",
                    if i == 0 { "M" } else { "L" },
                    x_of(p.processors as f64),
                    y_of(p.speedup)
                )
            })
            .collect();
        let _ = writeln!(
            out,
            r##"<path d="{}" fill="none" stroke="#4e79a7" stroke-width="2"/>"##,
            path.join(" ")
        );
        for p in points {
            let _ = writeln!(
                out,
                r##"<circle cx="{:.1}" cy="{:.1}" r="3.5" fill="#4e79a7"><title>{} processors: {:.2}x</title></circle>"##,
                x_of(p.processors as f64),
                y_of(p.speedup),
                p.processors,
                p.speedup
            );
            let _ = writeln!(
                out,
                r##"<text x="{:.1}" y="{:.1}" text-anchor="middle" fill="#555">{}</text>"##,
                x_of(p.processors as f64),
                bottom + 14.0,
                p.processors
            );
        }
    }
    let _ = writeln!(
        out,
        r##"<text x="10" y="{:.1}" fill="#555" transform="rotate(-90 10 {:.1})">speedup</text>"##,
        (top + bottom) / 2.0,
        (top + bottom) / 2.0
    );
    out.push_str("</svg>\n");
    out
}

/// Per-processor utilisation bars for a schedule, as SVG.
pub fn utilization_svg(schedule: &Schedule, processors: usize) -> String {
    let makespan = schedule.makespan().max(1e-9);
    let width = 460.0;
    let row_h = 22.0;
    let left = 44.0;
    let top = 30.0;
    let chart_w = width - left - 60.0;
    let height = top + processors as f64 * row_h + 12.0;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="sans-serif" font-size="11">"#
    );
    let _ = writeln!(
        out,
        r#"<text x="{left}" y="18" font-size="13" font-weight="bold">Processor utilisation — {}</text>"#,
        esc(schedule.heuristic())
    );
    for p in 0..processors {
        let busy = schedule.busy_time(ProcId(p as u32));
        let frac = (busy / makespan).clamp(0.0, 1.0);
        let y = top + p as f64 * row_h;
        let _ = writeln!(out, r#"<text x="8" y="{:.1}">P{p}</text>"#, y + row_h * 0.7);
        let _ = writeln!(
            out,
            r##"<rect x="{left}" y="{y}" width="{chart_w}" height="{:.1}" fill="#eee"/>"##,
            row_h - 6.0
        );
        let _ = writeln!(
            out,
            r##"<rect x="{left}" y="{y}" width="{:.2}" height="{:.1}" fill="#59a14f"/>"##,
            chart_w * frac,
            row_h - 6.0
        );
        let _ = writeln!(
            out,
            r##"<text x="{:.1}" y="{:.1}" fill="#333">{:.0}%</text>"##,
            left + chart_w + 6.0,
            y + row_h * 0.7,
            100.0 * frac
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_machine::{Machine, MachineParams, Topology};
    use banger_taskgraph::generators;

    fn sample() -> (TaskGraph, Machine, Schedule) {
        let g = generators::gauss_elimination(5, 2.0, 1.0);
        let m = Machine::new(Topology::hypercube(2), MachineParams::default());
        let s = banger_sched::mh::mh(&g, &m);
        (g, m, s)
    }

    fn well_formed(svg: &str) {
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Every opened tag family is balanced for the ones we emit paired.
        for tag in ["<svg", "<title>"] {
            let open = svg.matches(tag).count();
            let close_tag = if tag == "<svg" { "</svg>" } else { "</title>" };
            assert_eq!(open, svg.matches(close_tag).count(), "{tag}");
        }
    }

    #[test]
    fn gantt_svg_structure() {
        let (g, m, s) = sample();
        let svg = gantt_svg(&s, m.processors(), &g);
        well_formed(&svg);
        assert!(svg.contains("Gantt chart"));
        assert!(svg.contains("fan1"));
        // One block per placement.
        assert_eq!(
            svg.matches("<title>").count(),
            s.placements().len(),
            "{svg}"
        );
    }

    #[test]
    fn speedup_svg_structure() {
        let pts = vec![
            SpeedupPoint {
                processors: 1,
                speedup: 1.0,
            },
            SpeedupPoint {
                processors: 2,
                speedup: 1.8,
            },
            SpeedupPoint {
                processors: 4,
                speedup: 2.9,
            },
        ];
        let svg = speedup_svg("LU speedup", &pts);
        well_formed(&svg);
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("LU speedup"));
        assert!(svg.contains("stroke-dasharray"), "ideal line present");
    }

    #[test]
    fn utilization_svg_structure() {
        let (_, m, s) = sample();
        let svg = utilization_svg(&s, m.processors());
        well_formed(&svg);
        assert!(svg.contains("utilisation"));
        assert!(svg.contains('%'));
    }

    #[test]
    fn duplicates_rendered_dashed() {
        let g = generators::fork_join(4, 2.0, 10.0, 2.0, 15.0);
        let m = Machine::new(
            Topology::fully_connected(4),
            MachineParams {
                msg_startup: 1.0,
                ..MachineParams::default()
            },
        );
        let s = banger_sched::dsh::dsh(&g, &m);
        let svg = gantt_svg(&s, m.processors(), &g);
        if s.placements().iter().any(|p| !p.primary) {
            assert!(svg.contains("stroke-dasharray"), "{svg}");
        }
    }

    #[test]
    fn escaping() {
        let mut g = TaskGraph::new("x");
        g.add_task("a<b>&c", 5.0);
        let m = Machine::new(Topology::single(), MachineParams::default());
        let s = banger_sched::list::serial(&g, &m);
        let svg = gantt_svg(&s, 1, &g);
        assert!(!svg.contains("a<b>"), "must escape angle brackets");
        assert!(svg.contains("a&lt;b&gt;&amp;c"));
    }
}
