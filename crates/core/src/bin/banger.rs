//! `banger` — the environment as a command-line tool.
//!
//! Operates on `.bang` project documents (see `banger::document`):
//!
//! ```text
//! banger check <file> [--format text|json] static analysis (B0xx diagnostics)
//!              [--weights [-i var=value]...] add the per-task weight report:
//!                                         static estimate vs drawn weight
//!                                         (vs measured ops when inputs are
//!                                         given and the design is clean)
//! banger show <file>                      design statistics + DOT
//! banger gantt <file> [-H <heuristic>]    schedule + ASCII Gantt chart
//! banger compare <file>                   all heuristics, sorted
//! banger simulate <file> [-H <heuristic>] predicted vs achieved
//! banger animate <file> [-H <heuristic>]  frame-by-frame replay
//! banger advise <file> [-H <heuristic>]   bottleneck analysis + suggestions
//! banger recommend <file> [-p <procs>]    rank standard machines for the design
//! banger svg <file> [-H h] [-o dir]       write gantt/speedup/utilization SVGs
//! banger save-schedule <file> [-H h] [-o path]  persist a schedule
//! banger verify <file> -s <schedule>      validate + replay a saved schedule
//! banger run <file> [-i var=value]... [--trace out.json [-H h]]
//!                                         execute on host threads; --trace
//!                                         runs pinned to the -H schedule,
//!                                         writes Chrome trace JSON and
//!                                         prints the observed-vs-predicted
//!                                         drift report
//! banger trial <file> <program> [-i ...]  trial-run one PITS program
//! banger speedup <file> -t spec,spec,...  speedup prediction sweep
//! banger codegen <file> rust|c [-i ...]   emit generated code to stdout
//! banger parallelize <file> <task> <n>    split a reduction task n ways
//! banger optimize <file> [--expand task:tiles] [--fuse] [--emit out.bang]
//!                                         graph-rewrite optimizer: dead-arc
//!                                         elimination, optional map expansion
//!                                         of a dense-LU template task and
//!                                         task fusion; --emit writes the
//!                                         rewritten document
//! banger graph <file> [--optimized] [--dot]
//!                                         flattened task-graph statistics,
//!                                         optionally after optimization;
//!                                         --dot prints Graphviz DOT
//! banger help                             this list
//! ```
//!
//! `run` and `gantt` also accept `--optimize` to apply dead-arc
//! elimination + fusion before scheduling/executing.
//!
//! Input values: scalars (`-i a=2.5`) or arrays (`-i v=[1,2,3]`).
//!
//! Exit codes: 0 success (warnings allowed), 1 operational failure or
//! error-severity diagnostics, 2 usage errors (unknown subcommand, missing
//! arguments).

use banger::document::parse_project;
use banger::project::Project;
use banger_calc::Value;
use banger_machine::Topology;
use std::collections::BTreeMap;
use std::process::exit;

/// Every subcommand, with a one-line summary for `banger help`.
const COMMANDS: &[(&str, &str)] = &[
    (
        "check",
        "static analysis: races, interfaces, hygiene, body safety (B0xx); --weights for cost bounds",
    ),
    ("show", "design statistics + DOT rendering"),
    ("gantt", "schedule + ASCII Gantt chart"),
    (
        "compare",
        "run every scheduling heuristic, sorted by makespan",
    ),
    (
        "simulate",
        "message-accurate simulation: predicted vs achieved",
    ),
    ("animate", "frame-by-frame schedule replay"),
    ("advise", "bottleneck analysis + suggestions"),
    ("recommend", "rank standard machines for the design"),
    ("svg", "write gantt/speedup/utilization SVG charts"),
    ("save-schedule", "persist a schedule to a file"),
    ("verify", "validate + replay a saved schedule"),
    (
        "run",
        "execute the design on host threads (--repeat N for a warm session)",
    ),
    ("trial", "trial-run one PITS program with explicit inputs"),
    ("speedup", "speedup prediction sweep over topologies"),
    ("codegen", "emit generated Rust or C code to stdout"),
    (
        "parallelize",
        "split a reduction task n ways and rewrite the document",
    ),
    (
        "optimize",
        "graph-rewrite optimizer: dead arcs, map expansion (--expand), fusion (--fuse)",
    ),
    (
        "graph",
        "flattened task-graph statistics (--optimized first; --dot for Graphviz)",
    ),
    (
        "schedule",
        "alias of gantt (the daemon client grammar's name for it)",
    ),
    ("help", "show this list"),
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--connect PATH` is a global flag: serve this invocation from a
    // running daemon, falling back to local execution when none answers.
    let connect = extract_connect(&mut args);
    let command = args.first().map(String::as_str).unwrap_or("help");
    if matches!(command, "help" | "--help" | "-h") {
        println!("{}", usage_text());
        return;
    }
    if command == "serve" {
        exit(cmd_serve(&args[1..]));
    }
    if matches!(command, "ping" | "stats" | "shutdown") {
        exit(client_admin(connect.as_deref(), command, None));
    }
    if command == "evict" {
        let Some(path) = args.get(1).map(String::as_str) else {
            eprintln!("banger: evict needs a <file.bang> argument");
            exit(2);
        };
        exit(client_admin(connect.as_deref(), command, Some(path)));
    }
    if !COMMANDS.iter().any(|(name, _)| *name == command) {
        eprintln!("banger: unknown subcommand {command:?} (run `banger help` for the list)");
        exit(2);
    }
    let Some(path) = args.get(1).map(String::as_str) else {
        eprintln!(
            "banger: {command} needs a <file.bang> argument\n\n{}",
            usage_text()
        );
        exit(2);
    };
    if let Some(sock) = &connect {
        if let Some(code) = try_client(sock, command, path, &args[2..]) {
            exit(code);
        }
        // fell through: the daemon cannot serve this invocation — local.
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => die(&format!("cannot read {path}: {e}")),
    };
    let mut project = match parse_project(&text) {
        Ok(p) => p,
        Err(e) => die(&format!("{path}: {e}")),
    };
    let rest = &args[2..];

    let result = match command {
        "check" => cmd_check(&mut project, rest),
        "show" => cmd_show(&mut project),
        "gantt" => cmd_gantt(&mut project, rest),
        "compare" => cmd_compare(&mut project),
        "simulate" => cmd_simulate(&mut project, rest),
        "animate" => cmd_animate(&mut project, rest),
        "advise" => cmd_advise(&mut project, rest),
        "recommend" => cmd_recommend(&mut project, rest),
        "svg" => cmd_svg(&mut project, rest),
        "save-schedule" => cmd_save_schedule(&mut project, rest),
        "verify" => cmd_verify(&mut project, rest),
        "run" => cmd_run(&mut project, rest),
        "trial" => cmd_trial(&project, rest),
        "speedup" => cmd_speedup(&mut project, rest),
        "codegen" => cmd_codegen(&mut project, rest),
        "parallelize" => cmd_parallelize(&mut project, rest),
        "optimize" => cmd_optimize(&mut project, rest),
        "graph" => cmd_graph(&mut project, rest),
        "schedule" => cmd_gantt(&mut project, rest),
        _ => unreachable!("command validated above"),
    };
    if let Err(e) = result {
        die(&e);
    }
}

fn usage_text() -> String {
    let mut out =
        String::from("usage: banger <subcommand> <file.bang> [options]\n\nsubcommands:\n");
    for (name, summary) in COMMANDS {
        out.push_str(&format!("  {name:<14} {summary}\n"));
    }
    out.push_str(
        "\noptions:\n\
         \x20 -H <heuristic>   serial naive HLFET MCP ETF DLS MH DSH (default MH)\n\
         \x20 -i var=value     run/codegen inputs; arrays as [1,2,3]\n\
         \x20 -t spec,spec,... speedup topologies, e.g. single,hypercube:1,hypercube:2\n\
         \x20 -p <procs>       recommend: processor budget (default 16)\n\
         \x20 -s <path>        verify: saved schedule file\n\
         \x20 -o <path>        svg/save-schedule: output location\n\
         \x20 --format <fmt>   check: text (default) or json\n\
         \x20 --weights        check: per-task weight report — drawn weight vs the\n\
         \x20                  abstract interpreter's static cost bounds; with -i\n\
         \x20                  inputs and a clean design, also runs it and shows\n\
         \x20                  measured ops per task\n\
         \x20 --reference      trial: use the tree-walking reference interpreter\n\
         \x20 --repeat <n>     run: fire the design n times through one persistent\n\
         \x20                  session (warm worker pool; prints per-firing stats)\n\
         \x20 --trace <path>   run: execute pinned to the -H schedule with tracing,\n\
         \x20                  write Chrome trace JSON (chrome://tracing, Perfetto)\n\
         \x20                  and print the observed-vs-predicted drift report\n\
         \x20 --optimize       run/gantt: apply dead-arc elimination + task fusion\n\
         \x20                  to the design first (Outcome-preserving)\n\
         \x20 --fuse           optimize: fuse grain-packed clusters into single tasks\n\
         \x20 --expand t:n     optimize: expand dense-LU template task t into an\n\
         \x20                  n x n tiled block-LU (bit-identical results)\n\
         \x20 --emit <path>    optimize: write the rewritten document ('-' = stdout)\n\
         \x20 --optimized      graph: optimize (with fusion) before reporting\n\
         \x20 --dot            graph: print Graphviz DOT of the flattened graph\n\
         \ndaemon:\n\
         \x20 banger serve [--socket PATH]   persistent project daemon: content-hashed\n\
         \x20                  caches (parse, diagnose, compile, schedule) plus warm\n\
         \x20                  executor sessions, served over a Unix socket\n\
         \x20 --connect PATH   serve check/schedule(gantt)/run/optimize from a running\n\
         \x20                  daemon; falls back to local execution when no daemon\n\
         \x20                  answers or the flags need local files\n\
         \x20 ping|stats|shutdown            daemon admin (socket: --connect PATH,\n\
         \x20                  else $BANGER_SOCKET, else <tmpdir>/banger.sock)\n\
         \x20 evict <file>     drop the daemon's cached state for one project\n\
         \nexit codes:\n\
         \x20 0  success (warnings allowed)\n\
         \x20 1  operational failure, or `check` found error-severity diagnostics\n\
         \x20 2  usage error (unknown subcommand, missing arguments)",
    );
    out
}

/// Removes `--connect PATH` from the argument list and returns the
/// socket path, wherever the flag appears.
fn extract_connect(args: &mut Vec<String>) -> Option<String> {
    let i = args.iter().position(|a| a == "--connect")?;
    if i + 1 >= args.len() {
        eprintln!("banger: --connect needs a socket path");
        exit(2);
    }
    let path = args.remove(i + 1);
    args.remove(i);
    Some(path)
}

/// `banger serve [--socket PATH]` — run the project daemon in the
/// foreground until SIGINT/SIGTERM or a `shutdown` request.
#[cfg(unix)]
fn cmd_serve(rest: &[String]) -> i32 {
    let socket = rest
        .windows(2)
        .find(|w| w[0] == "--socket")
        .map(|w| std::path::PathBuf::from(&w[1]))
        .unwrap_or_else(banger::serve::default_socket_path);
    banger::serve::server::install_signal_handlers();
    let server = match banger::serve::Server::bind(&socket) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("banger: cannot bind {}: {e}", socket.display());
            return 1;
        }
    };
    eprintln!("banger serve: listening on {}", socket.display());
    match server.serve() {
        Ok(()) => {
            eprintln!("banger serve: shut down cleanly");
            0
        }
        Err(e) => {
            eprintln!("banger serve: {e}");
            1
        }
    }
}

#[cfg(not(unix))]
fn cmd_serve(_rest: &[String]) -> i32 {
    eprintln!("banger: serve requires a Unix platform");
    1
}

/// Prints a daemon response the way the equivalent local command
/// would: deterministic output to stdout, notes to stderr, `die`-style
/// error line on failure. Returns the process exit code.
#[cfg(unix)]
fn print_response(resp: &banger::serve::Response) -> i32 {
    print!("{}", resp.output);
    if !resp.notes.is_empty() {
        eprintln!("{}", resp.notes);
    }
    if !resp.ok {
        eprintln!("banger: {}", resp.error);
        return if resp.exit != 0 { resp.exit } else { 1 };
    }
    resp.exit
}

/// Daemon-admin verbs (`ping`, `stats`, `shutdown`, `evict`): no local
/// fallback — these are meaningless without a daemon.
#[cfg(unix)]
fn client_admin(connect: Option<&str>, command: &str, path_arg: Option<&str>) -> i32 {
    let socket = connect
        .map(std::path::PathBuf::from)
        .unwrap_or_else(banger::serve::default_socket_path);
    let mut client = match banger::serve::Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("banger: cannot connect to {}: {e}", socket.display());
            return 1;
        }
    };
    let mut req = banger::serve::Request::new(command);
    req.path = path_arg.map(str::to_string);
    match client.request(&req) {
        Ok(resp) => print_response(&resp),
        Err(e) => {
            eprintln!("banger: daemon request failed: {e}");
            1
        }
    }
}

#[cfg(not(unix))]
fn client_admin(_connect: Option<&str>, _command: &str, _path_arg: Option<&str>) -> i32 {
    eprintln!("banger: daemon commands require a Unix platform");
    1
}

/// Maps a `--connect` invocation onto a daemon request. Returns the
/// exit code when the daemon served (or definitively failed) the
/// request, or `None` to fall back to local execution — either because
/// no daemon answered or because the flags demand local behavior
/// (file outputs, weight reports, traces, warm-repeat loops).
#[cfg(unix)]
fn try_client(sock: &str, command: &str, path: &str, rest: &[String]) -> Option<i32> {
    use banger::serve::{Client, Request};
    let local_only = |flag: &str| {
        eprintln!("banger: {flag} is served locally; ignoring --connect");
    };
    let req = match command {
        "check" => {
            if rest.iter().any(|a| a == "--weights") {
                local_only("check --weights");
                return None;
            }
            let mut r = Request::for_path("check", path);
            if let Some(w) = rest.windows(2).find(|w| w[0] == "--format") {
                r.format = w[1].clone();
            }
            r
        }
        "gantt" | "schedule" => {
            if rest.iter().any(|a| a == "--optimize") {
                local_only("gantt --optimize");
                return None;
            }
            let mut r = Request::for_path("schedule", path);
            r.heuristic = opt_heuristic(rest);
            r
        }
        "run" => {
            if let Some(flag) = ["--trace", "--repeat", "--optimize"]
                .iter()
                .find(|f| rest.iter().any(|a| a == **f))
            {
                local_only(&format!("run {flag}"));
                return None;
            }
            let mut r = Request::for_path("run", path);
            r.inputs = match opt_inputs(rest) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("banger: {e}");
                    return Some(1);
                }
            };
            r
        }
        "optimize" => {
            if let Some(flag) = ["--expand", "--emit"]
                .iter()
                .find(|f| rest.iter().any(|a| a == **f))
            {
                local_only(&format!("optimize {flag}"));
                return None;
            }
            let mut r = Request::for_path("optimize", path);
            r.fuse = rest.iter().any(|a| a == "--fuse");
            r
        }
        // Everything else (show, compare, simulate, svg, codegen, ...)
        // stays local: those commands are not daemon verbs.
        _ => return None,
    };
    let mut client = match Client::connect(std::path::Path::new(sock)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("banger: no daemon at {sock} ({e}); running locally");
            return None;
        }
    };
    match client.request(&req) {
        Ok(resp) => Some(print_response(&resp)),
        Err(e) => {
            eprintln!("banger: daemon request failed: {e}");
            Some(1)
        }
    }
}

#[cfg(not(unix))]
fn try_client(_sock: &str, _command: &str, _path: &str, _rest: &[String]) -> Option<i32> {
    eprintln!("banger: --connect requires a Unix platform; running locally");
    None
}

fn die(msg: &str) -> ! {
    eprintln!("banger: {msg}");
    exit(1)
}

fn opt_heuristic(rest: &[String]) -> String {
    rest.windows(2)
        .find(|w| w[0] == "-H")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "MH".to_string())
}

fn opt_inputs(rest: &[String]) -> Result<BTreeMap<String, Value>, String> {
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i < rest.len() {
        if rest[i] == "-i" {
            let pair = rest
                .get(i + 1)
                .ok_or_else(|| "-i needs var=value".to_string())?;
            let (var, val) = pair
                .split_once('=')
                .ok_or_else(|| format!("bad input {pair:?} (want var=value)"))?;
            out.insert(var.to_string(), parse_value(val)?);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(out)
}

fn parse_value(text: &str) -> Result<Value, String> {
    let t = text.trim();
    if let Some(inner) = t.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut vals = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            vals.push(
                part.parse::<f64>()
                    .map_err(|_| format!("bad array element {part:?}"))?,
            );
        }
        Ok(Value::array(vals))
    } else {
        t.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad scalar {t:?}"))
    }
}

fn cmd_check(project: &mut Project, rest: &[String]) -> Result<(), String> {
    // banger check <file> [--format text|json] [--weights [-i var=value]...]
    // Plain check prints diagnostics (JSON: a bare array, schema unchanged).
    // --weights appends the per-task weight report; when inputs are given
    // and the design is error-free, the design also runs once so the
    // report can show measured ops next to the static bounds (JSON: one
    // object with "diagnostics" and "weights" keys).
    let format = rest
        .windows(2)
        .find(|w| w[0] == "--format")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "text".to_string());
    let diags = project.diagnose().to_vec();
    let weights = if rest.iter().any(|a| a == "--weights") {
        let inputs = opt_inputs(rest)?;
        let measured = if !inputs.is_empty() && !banger::analyze::has_errors(&diags) {
            Some(project.run(&inputs).map_err(|e| e.to_string())?)
        } else {
            None
        };
        Some(
            project
                .weight_report(measured.as_ref())
                .map_err(|e| e.to_string())?,
        )
    } else {
        None
    };
    match format.as_str() {
        "text" => {
            println!("{}", banger::analyze::render_report(&diags));
            if let Some(rows) = &weights {
                println!("{}", banger::render_weight_table(rows));
            }
        }
        "json" => match &weights {
            None => println!("{}", banger::analyze::render_json(&diags)),
            Some(rows) => println!(
                "{{\"diagnostics\": {},\n\"weights\": {}}}",
                banger::analyze::render_json(&diags),
                banger::weight_rows_json(rows)
            ),
        },
        other => {
            return Err(format!(
                "unknown check format {other:?} (want text or json)"
            ))
        }
    }
    if banger::analyze::has_errors(&diags) {
        let n = diags
            .iter()
            .filter(|d| d.severity == banger::analyze::Severity::Error)
            .count();
        return Err(format!(
            "design has {n} error-severity diagnostic{}",
            if n == 1 { "" } else { "s" }
        ));
    }
    Ok(())
}

fn cmd_show(project: &mut Project) -> Result<(), String> {
    let design = project.design().clone();
    println!(
        "project {} — design depth {}, {} leaf tasks, {} programs",
        project.name(),
        design.depth(),
        design.leaf_task_count(),
        project.library().len()
    );
    if let Some(m) = project.machine() {
        println!("machine: {}", m.describe());
    } else {
        println!("machine: (none defined)");
    }
    let f = project.flatten().map_err(|e| e.to_string())?;
    let stats = banger_taskgraph::analysis::stats(&f.graph);
    println!(
        "flattened: {} tasks, {} arcs, width {}, depth {}, cp {:.2}, avg parallelism {:.2}",
        stats.tasks,
        stats.edges,
        stats.width,
        stats.depth,
        stats.cp_length,
        stats.average_parallelism
    );
    println!(
        "inputs: {:?}  outputs: {:?}",
        f.inputs.iter().map(|p| p.var.as_str()).collect::<Vec<_>>(),
        f.outputs.iter().map(|p| p.var.as_str()).collect::<Vec<_>>()
    );
    println!("\n{}", banger_taskgraph::dot::hiergraph_to_dot(&design));
    Ok(())
}

fn cmd_gantt(project: &mut Project, rest: &[String]) -> Result<(), String> {
    maybe_optimize(project, rest)?;
    let h = opt_heuristic(rest);
    let s = project.schedule(&h).map_err(|e| e.to_string())?;
    println!("{}", project.gantt(&s).map_err(|e| e.to_string())?);
    let f = project.flatten().map_err(|e| e.to_string())?;
    let g = f.graph.clone();
    let m = project.machine().ok_or("project has no machine")?;
    println!(
        "makespan {:.3}, speedup {:.2}x, efficiency {:.0}%, {} of {} processors used",
        s.makespan(),
        s.speedup(&g, m),
        100.0 * s.efficiency(&g, m),
        s.processors_used(),
        m.processors()
    );
    Ok(())
}

fn cmd_compare(project: &mut Project) -> Result<(), String> {
    let rows = project.compare_heuristics().map_err(|e| e.to_string())?;
    println!(
        "{:<14} {:>10} {:>9} {:>11} {:>7}",
        "heuristic", "makespan", "speedup", "efficiency", "procs"
    );
    for r in rows {
        println!(
            "{:<14} {:>10.3} {:>8.2}x {:>10.0}% {:>7}",
            r.heuristic,
            r.makespan,
            r.speedup,
            100.0 * r.efficiency,
            r.processors_used
        );
    }
    Ok(())
}

fn cmd_simulate(project: &mut Project, rest: &[String]) -> Result<(), String> {
    let h = opt_heuristic(rest);
    let s = project.schedule(&h).map_err(|e| e.to_string())?;
    let r = project.simulate(&s).map_err(|e| e.to_string())?;
    println!(
        "{h}: predicted {:.3}, achieved {:.3} (ratio {:.3})",
        r.predicted_makespan,
        r.achieved_makespan(),
        r.compare()
    );
    println!(
        "traffic: {} messages, {} link hops, {:.3} time units queueing",
        r.stats.messages, r.stats.hops, r.stats.queue_delay
    );
    Ok(())
}

fn cmd_animate(project: &mut Project, rest: &[String]) -> Result<(), String> {
    let h = opt_heuristic(rest);
    let s = project.schedule(&h).map_err(|e| e.to_string())?;
    let r = project.simulate(&s).map_err(|e| e.to_string())?;
    let procs = project
        .machine()
        .ok_or("project has no machine")?
        .processors();
    let g = project.flatten().map_err(|e| e.to_string())?.graph.clone();
    println!(
        "{}",
        banger::animate::animate(&g, procs, &r, banger::animate::AnimateOptions::default())
    );
    Ok(())
}

fn cmd_advise(project: &mut Project, rest: &[String]) -> Result<(), String> {
    let h = opt_heuristic(rest);
    let s = project.schedule(&h).map_err(|e| e.to_string())?;
    let g = project.flatten().map_err(|e| e.to_string())?.graph.clone();
    let m = project.machine().ok_or("project has no machine")?;
    let advice = banger::advisor::advise(&g, m, &s);
    println!("{}", banger::advisor::render(&g, &advice));
    Ok(())
}

fn cmd_recommend(project: &mut Project, rest: &[String]) -> Result<(), String> {
    // banger recommend <file> [-p maxprocs] — sweep the standard machine
    // candidates (MH on each) and print them ranked by makespan.
    let max_procs = match rest.windows(2).find(|w| w[0] == "-p") {
        Some(w) => w[1]
            .parse::<usize>()
            .map_err(|_| format!("bad processor budget {:?} (want a number)", w[1]))?,
        None => 16,
    };
    if max_procs == 0 {
        return Err("processor budget must be at least 1".to_string());
    }
    let params = project.machine().map(|m| *m.params()).unwrap_or_default();
    let choices = project
        .recommend_machine(max_procs, params)
        .map_err(|e| e.to_string())?;
    println!("machine search — {} (budget {max_procs})", project.name());
    print!("{}", banger::advisor::render_machine_search(&choices));
    Ok(())
}

fn cmd_svg(project: &mut Project, rest: &[String]) -> Result<(), String> {
    // banger svg <file> [-H h] [-o dir] — writes gantt.svg, speedup.svg and
    // utilization.svg into dir (default: current directory).
    let h = opt_heuristic(rest);
    let dir = rest
        .windows(2)
        .find(|w| w[0] == "-o")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let s = project.schedule(&h).map_err(|e| e.to_string())?;
    let g = project.flatten().map_err(|e| e.to_string())?.graph.clone();
    let m = project.machine().ok_or("project has no machine")?.clone();

    let gantt = banger::svg::gantt_svg(&s, m.processors(), &g);
    let util = banger::svg::utilization_svg(&s, m.processors());
    let points = project
        .predict_speedup(
            &[
                Topology::single(),
                Topology::hypercube(1),
                Topology::hypercube(2),
                Topology::hypercube(3),
            ],
            *m.params(),
        )
        .map_err(|e| e.to_string())?;
    let speedup =
        banger::svg::speedup_svg(&format!("{} — predicted speedup", project.name()), &points);
    for (name, body) in [
        ("gantt.svg", &gantt),
        ("utilization.svg", &util),
        ("speedup.svg", &speedup),
    ] {
        let path = format!("{dir}/{name}");
        std::fs::write(&path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_save_schedule(project: &mut Project, rest: &[String]) -> Result<(), String> {
    // banger save-schedule <file> [-H h] [-o path] — computes a schedule
    // and writes it in the schedule text format (stdout by default).
    let h = opt_heuristic(rest);
    let s = project.schedule(&h).map_err(|e| e.to_string())?;
    let text = banger_sched::textfmt::to_text(&s);
    match rest.windows(2).find(|w| w[0] == "-o") {
        Some(w) => {
            std::fs::write(&w[1], &text).map_err(|e| format!("cannot write {}: {e}", w[1]))?;
            eprintln!("wrote {} ({} placements)", w[1], s.placements().len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_verify(project: &mut Project, rest: &[String]) -> Result<(), String> {
    // banger verify <file> -s schedule.txt — validates a saved schedule
    // against the project's design and machine, then replays it on the
    // simulator.
    let sched_path = rest
        .windows(2)
        .find(|w| w[0] == "-s")
        .map(|w| w[1].clone())
        .ok_or_else(|| "verify needs -s <schedule file>".to_string())?;
    let text = std::fs::read_to_string(&sched_path)
        .map_err(|e| format!("cannot read {sched_path}: {e}"))?;
    let s = banger_sched::textfmt::from_text(&text)?;
    let g = project.flatten().map_err(|e| e.to_string())?.graph.clone();
    let m = project.machine().ok_or("project has no machine")?.clone();
    s.validate(&g, &m).map_err(|e| format!("INVALID: {e}"))?;
    let r = project.simulate(&s).map_err(|e| e.to_string())?;
    println!(
        "VALID: {} placements, makespan {:.3}; simulation achieves {:.3} (ratio {:.3})",
        s.placements().len(),
        s.makespan(),
        r.achieved_makespan(),
        r.compare()
    );
    Ok(())
}

fn cmd_run(project: &mut Project, rest: &[String]) -> Result<(), String> {
    // banger run <file> [-i var=value]... [--repeat N] [--trace out.json [-H h]]
    // Plain runs use the greedy work-stealing pool. With --repeat N the
    // design fires N times through one persistent exec::Session (warm
    // worker pool, routing tables, and slab store reused per firing) and
    // the last firing's outputs print, with per-firing latency stats.
    // With --trace, the design runs pinned to the -H schedule (default
    // MH) with event tracing on: the Chrome trace JSON goes to out.json,
    // and the predicted vs observed Gantt charts, the per-task drift
    // report, and the aggregate trace counters print alongside the
    // outputs. --optimize rewrites the design first (dead arcs + fusion).
    maybe_optimize(project, rest)?;
    let inputs = opt_inputs(rest)?;
    let trace_path = rest
        .windows(2)
        .find(|w| w[0] == "--trace")
        .map(|w| w[1].clone());
    if rest.iter().any(|a| a == "--trace") && trace_path.is_none() {
        return Err("--trace needs an output path (e.g. --trace out.json)".to_string());
    }
    let repeat = rest
        .windows(2)
        .find(|w| w[0] == "--repeat")
        .map(|w| {
            w[1].parse::<u32>()
                .map_err(|_| format!("--repeat needs a positive count, got {:?}", w[1]))
        })
        .transpose()?;
    if rest.iter().any(|a| a == "--repeat") && repeat.is_none() {
        return Err("--repeat needs a count (e.g. --repeat 1000)".to_string());
    }

    if let Some(n) = repeat {
        if n == 0 {
            return Err("--repeat needs a count of at least 1".to_string());
        }
        if trace_path.is_some() {
            return Err("--repeat and --trace are mutually exclusive".to_string());
        }
        let mut session = project
            .session(&banger_exec::ExecOptions::default())
            .map_err(|e| e.to_string())?;
        let mut report = None;
        let mut total = std::time::Duration::ZERO;
        let mut best = std::time::Duration::MAX;
        for _ in 0..n {
            let r = session.run(&inputs).map_err(|e| e.to_string())?;
            total += r.wall;
            best = best.min(r.wall);
            report = Some(r);
        }
        let report = report.ok_or("--repeat produced no firing report")?;
        print_run_output(&report);
        eprintln!(
            "({n} firings on {} warm workers: total {total:?}, mean {:?}, best {best:?})",
            session.workers(),
            total / n,
        );
        return Ok(());
    }

    let Some(trace_path) = trace_path else {
        let report = project.run(&inputs).map_err(|e| e.to_string())?;
        print_run_output(&report);
        return Ok(());
    };

    // Traced run: schedule, execute pinned to it, then compare.
    let h = opt_heuristic(rest);
    let schedule = project.schedule(&h).map_err(|e| e.to_string())?;
    let options = banger_exec::ExecOptions {
        mode: banger_exec::ExecMode::pinned(schedule.clone()),
        trace: true,
        ..Default::default()
    };
    let report = project
        .run_with(&inputs, &options)
        .map_err(|e| e.to_string())?;
    print_run_output(&report);
    let trace = report
        .trace
        .as_ref()
        .ok_or("traced run recorded no trace")?;

    let f = project.flatten().map_err(|e| e.to_string())?;
    let name_of = {
        let g = f.graph.clone();
        move |t| banger::project::short_name(&g.task(t).name)
    };
    std::fs::write(&trace_path, trace.chrome_json(&name_of))
        .map_err(|e| format!("cannot write {trace_path}: {e}"))?;
    eprintln!("wrote {trace_path} (load in chrome://tracing or Perfetto)");

    println!("\npredicted ({h}):");
    println!("{}", project.gantt(&schedule).map_err(|e| e.to_string())?);
    println!("observed:");
    println!(
        "{}",
        project.observed_gantt(trace).map_err(|e| e.to_string())?
    );
    let drift = project
        .drift_report(&schedule, trace)
        .map_err(|e| e.to_string())?;
    println!("{}", drift.render(&name_of));
    eprintln!("{}", trace.summary().render());
    Ok(())
}

fn print_run_output(report: &banger_exec::ExecReport) {
    for (task, line) in &report.prints {
        println!("[{}] {}", task, line);
    }
    for (var, value) in &report.outputs {
        println!("{var} = {value}");
    }
    eprintln!("({} task runs, wall {:?})", report.runs.len(), report.wall);
}

fn cmd_trial(project: &Project, rest: &[String]) -> Result<(), String> {
    // banger trial <file> <program> [-i var=value]... [--reference]
    // Runs one PITS program through the compiled VM (default) or the
    // tree-walking reference interpreter (--reference); both produce
    // identical outcomes.
    let program = rest
        .first()
        .filter(|a| !a.starts_with('-'))
        .ok_or_else(|| "trial needs a <program> name".to_string())?;
    let inputs = opt_inputs(rest)?;
    let config = banger_calc::InterpConfig {
        reference: rest.iter().any(|a| a == "--reference"),
        ..Default::default()
    };
    let outcome = project
        .trial_run_with(program, &inputs, config)
        .map_err(|e| e.to_string())?;
    for line in &outcome.prints {
        println!("{line}");
    }
    for (var, value) in &outcome.outputs {
        println!("{var} = {value}");
    }
    eprintln!(
        "({} ops, {} engine)",
        outcome.ops,
        if config.reference { "reference" } else { "vm" }
    );
    Ok(())
}

fn cmd_speedup(project: &mut Project, rest: &[String]) -> Result<(), String> {
    let specs = rest
        .windows(2)
        .find(|w| w[0] == "-t")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "single,hypercube:1,hypercube:2,hypercube:3".to_string());
    let mut topos = Vec::new();
    for spec in specs.split(',') {
        topos.push(Topology::parse(spec.trim()).map_err(|e| e.to_string())?);
    }
    let params = project.machine().map(|m| *m.params()).unwrap_or_default();
    let points = project
        .predict_speedup(&topos, params)
        .map_err(|e| e.to_string())?;
    println!(
        "{}",
        banger::speedup_chart(
            &format!("predicted speedup — {}", project.name()),
            &points,
            40
        )
    );
    Ok(())
}

fn cmd_parallelize(project: &mut Project, rest: &[String]) -> Result<(), String> {
    // banger parallelize <file> <task> <chunks>  — prints the transformed
    // document to stdout (redirect to save).
    let task = rest
        .first()
        .ok_or_else(|| "parallelize needs a task name".to_string())?;
    let chunks: usize = rest
        .get(1)
        .ok_or_else(|| "parallelize needs a chunk count".to_string())?
        .parse()
        .map_err(|_| "bad chunk count".to_string())?;
    let names = project
        .parallelize_task(task, chunks)
        .map_err(|e| e.to_string())?;
    eprintln!("expanded {task:?} into {} chunks: {names:?}", names.len());
    print!("{}", banger::document::print_project(project));
    Ok(())
}

/// Renders an [`banger::project::OptimizeStats`] as one or two lines.
fn render_opt_stats(stats: &banger::project::OptimizeStats) -> String {
    let mut out = format!(
        "dce: removed {} arcs, {} input decls, {} locals, {} ports; dropped {} programs",
        stats.dce.arcs_removed,
        stats.dce.inputs_trimmed,
        stats.dce.locals_trimmed,
        stats.dce.ports_removed,
        stats.dce.programs_dropped,
    );
    if let Some(f) = &stats.fuse {
        out.push_str(&format!(
            "\nfuse: {} -> {} tasks ({} clusters fused, {} rejected), est. parallel time {:.1} -> {:.1}",
            f.tasks_before,
            f.tasks_after,
            f.clusters_fused,
            f.clusters_rejected,
            f.estimated_pt_before,
            f.estimated_pt_after,
        ));
    }
    out
}

/// Applies the optimizer first when `--optimize` is among the options
/// (used by `run` and `gantt`).
fn maybe_optimize(project: &mut Project, rest: &[String]) -> Result<(), String> {
    if rest.iter().any(|a| a == "--optimize") {
        let stats = project.optimize(true).map_err(|e| e.to_string())?;
        eprintln!("{}", render_opt_stats(&stats));
    }
    Ok(())
}

fn cmd_optimize(project: &mut Project, rest: &[String]) -> Result<(), String> {
    // banger optimize <file> [--expand task:tiles] [--fuse] [--emit out.bang]
    // Map expansion runs first (it creates the task-parallel structure),
    // then dead-arc elimination and — with --fuse — task fusion. The
    // rewritten document goes to --emit's path ('-' for stdout).
    if rest.iter().any(|a| a == "--expand") {
        let spec = rest
            .windows(2)
            .find(|w| w[0] == "--expand")
            .map(|w| w[1].clone())
            .ok_or_else(|| "--expand needs task:tiles (e.g. --expand fact:16)".to_string())?;
        let (task, tiles) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad --expand {spec:?} (want task:tiles)"))?;
        let tiles: usize = tiles
            .parse()
            .map_err(|_| format!("bad tile count {tiles:?}"))?;
        let st = project
            .expand_task(task, tiles)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "expanded {task:?} into {0}x{0} tiles of {1}x{1} ({2} tasks, {3} programs added)",
            st.tiles, st.block, st.tasks_added, st.programs_added
        );
    }
    let fuse = rest.iter().any(|a| a == "--fuse");
    let stats = project.optimize(fuse).map_err(|e| e.to_string())?;
    eprintln!("{}", render_opt_stats(&stats));
    let f = project.flatten().map_err(|e| e.to_string())?;
    eprintln!(
        "optimized design: {} tasks, {} arcs",
        f.graph.task_count(),
        f.graph.edge_count()
    );
    if let Some(path) = rest
        .windows(2)
        .find(|w| w[0] == "--emit")
        .map(|w| w[1].clone())
    {
        let doc = banger::document::print_project(project);
        if path == "-" {
            print!("{doc}");
        } else {
            std::fs::write(&path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
    } else if rest.iter().any(|a| a == "--emit") {
        return Err("--emit needs an output path ('-' for stdout)".to_string());
    }
    Ok(())
}

fn cmd_graph(project: &mut Project, rest: &[String]) -> Result<(), String> {
    // banger graph <file> [--optimized] [--dot]
    // Reports the *flattened* task graph (what the scheduler and router
    // actually see), unlike `show`, which renders the hierarchy.
    if rest.iter().any(|a| a == "--optimized") {
        let stats = project.optimize(true).map_err(|e| e.to_string())?;
        eprintln!("{}", render_opt_stats(&stats));
    }
    let f = project.flatten().map_err(|e| e.to_string())?;
    if rest.iter().any(|a| a == "--dot") {
        println!("{}", banger_taskgraph::dot::taskgraph_to_dot(&f.graph));
        return Ok(());
    }
    let stats = banger_taskgraph::analysis::stats(&f.graph);
    println!(
        "flattened: {} tasks, {} arcs, width {}, depth {}, cp {:.2}, avg parallelism {:.2}",
        stats.tasks,
        stats.edges,
        stats.width,
        stats.depth,
        stats.cp_length,
        stats.average_parallelism
    );
    println!(
        "inputs: {:?}  outputs: {:?}",
        f.inputs.iter().map(|p| p.var.as_str()).collect::<Vec<_>>(),
        f.outputs.iter().map(|p| p.var.as_str()).collect::<Vec<_>>()
    );
    Ok(())
}

fn cmd_codegen(project: &mut Project, rest: &[String]) -> Result<(), String> {
    let lang = rest.first().map(String::as_str).unwrap_or("rust");
    let inputs = opt_inputs(rest)?;
    let h = opt_heuristic(rest);
    let s = project.schedule(&h).map_err(|e| e.to_string())?;
    let code = match lang {
        "rust" => project
            .generate_rust(&s, &inputs)
            .map_err(|e| e.to_string())?,
        "c" => project.generate_c(&s, &inputs).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown language {other:?} (rust|c)")),
    };
    print!("{code}");
    Ok(())
}
