//! Builders that regenerate each figure of the paper. The `repro` binary
//! in `banger-bench` prints these; EXPERIMENTS.md records the outputs.

use crate::chart::{speedup_chart, SpeedupPoint};
use crate::gantt::{self, GanttOptions};
use crate::lu::{lu_inputs, lu_program_library, solve_reference, test_system};
use crate::project::{short_name, Project};
use banger_calc::{parser, pretty, Button, Panel, Value};
use banger_machine::{Machine, MachineParams, Topology};
use banger_taskgraph::{analysis, dot, generators};
use std::fmt::Write as _;

/// Machine parameters used for the Figure 3 reproduction: modest message
/// startup and bandwidth so the LU design's communication is visible but
/// not dominant (the paper does not publish its exact constants; shapes,
/// not absolute numbers, are the reproduction target).
pub fn figure3_params() -> MachineParams {
    MachineParams {
        processor_speed: 1.0,
        process_startup: 0.1,
        msg_startup: 0.25,
        transmission_rate: 8.0,
        ..MachineParams::default()
    }
}

/// **Figure 1** — the 2-level hierarchical dataflow graph of the LU
/// decomposition design for a 3-by-3 system `Ax = b`. Returns a printable
/// report: design statistics plus the DOT rendering of the hierarchy.
pub fn figure1() -> String {
    let h = generators::lu_hierarchical(3);
    let f = h.flatten().expect("LU design flattens");
    let stats = analysis::stats(&f.graph);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1 — Hierarchical dataflow graph, LU of 3x3 Ax=b"
    );
    let _ = writeln!(out, "design: {} (depth {})", h.name(), h.depth());
    let _ = writeln!(
        out,
        "top level: {} nodes, {} arcs; flattened: {} tasks, {} arcs",
        h.node_count(),
        h.arc_count(),
        stats.tasks,
        stats.edges
    );
    let _ = writeln!(
        out,
        "width {} / depth {} / critical path {:.1} / avg parallelism {:.2}",
        stats.width, stats.depth, stats.cp_length, stats.average_parallelism
    );
    let _ = writeln!(
        out,
        "external inputs: {:?}; outputs: {:?}",
        f.inputs.iter().map(|p| p.var.as_str()).collect::<Vec<_>>(),
        f.outputs.iter().map(|p| p.var.as_str()).collect::<Vec<_>>()
    );
    out.push('\n');
    out.push_str(&dot::hiergraph_to_dot(&h));
    out
}

/// **Figure 2** — the interconnection topologies Banger supports. Returns
/// a table of name / processors / links / degree / diameter.
pub fn figure2() -> String {
    let topos = [
        Topology::hypercube(3),
        Topology::mesh(4, 4),
        Topology::tree(2, 3),
        Topology::star(8),
        Topology::fully_connected(8),
        Topology::ring(8),
    ];
    let mut out = String::new();
    let _ = writeln!(out, "Figure 2 — Supported interconnection topologies");
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>6} {:>9} {:>9} {:>10}",
        "topology", "procs", "links", "max-deg", "diameter", "mean-dist"
    );
    for t in topos {
        let r = banger_machine::RoutingTable::build(&t);
        let maxdeg = t.proc_ids().map(|p| t.degree(p)).max().unwrap_or(0);
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>6} {:>9} {:>9} {:>10.3}",
            t.name(),
            t.processors(),
            t.link_count(),
            maxdeg,
            r.diameter().map(|d| d.to_string()).unwrap_or_default(),
            r.mean_distance()
        );
    }
    out
}

/// **Figure 3** — Gantt charts of the LU design mapped (by MH) onto 2-, 4-
/// and 8-processor hypercubes, plus the speedup-prediction chart.
pub fn figure3() -> String {
    let params = figure3_params();
    let f = generators::lu_hierarchical(3).flatten().unwrap();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3 — LU design scheduled on hypercubes (MH heuristic)"
    );
    let mut points = vec![];
    for dim in 0..=3u32 {
        let m = Machine::new(Topology::hypercube(dim), params);
        let s = banger_sched::mh::mh(&f.graph, &m);
        s.validate(&f.graph, &m).expect("MH schedules validate");
        if dim > 0 {
            out.push('\n');
            out.push_str(&gantt::render(
                &s,
                m.processors(),
                |t| short_name(&f.graph.task(t).name),
                GanttOptions::default(),
            ));
        }
        points.push(SpeedupPoint {
            processors: m.processors(),
            speedup: s.speedup(&f.graph, &m),
        });
    }
    out.push('\n');
    out.push_str(&speedup_chart(
        "Predicted speedup, LU 3x3 on hypercubes (1,2,4,8 processors)",
        &points,
        40,
    ));

    // The 3x3 design has average parallelism ~1.3, so its curve saturates
    // immediately; the paper's speedup chart shape (growth over 2/4/8)
    // appears once the system is large enough to have parallel width.
    let f6 = generators::lu_hierarchical(6).flatten().unwrap();
    let mut pts6 = Vec::new();
    for dim in 0..=3u32 {
        let m = Machine::new(Topology::hypercube(dim), params);
        let s = banger_sched::mh::mh(&f6.graph, &m);
        pts6.push(SpeedupPoint {
            processors: m.processors(),
            speedup: s.speedup(&f6.graph, &m),
        });
    }
    out.push('\n');
    out.push_str(&speedup_chart(
        "Predicted speedup, LU 6x6 on hypercubes (1,2,4,8 processors)",
        &pts6,
        40,
    ));
    out
}

/// The paper's Figure 4 program, verbatim.
pub const SQUARE_ROOT_SRC: &str = "\
task SquareRoot
  in a
  out x
  local g, prev
begin
  g := a / 2
  prev := 0
  while abs(g - prev) > 1e-12 do
    prev := g
    g := (g + a / g) / 2
  end
  x := g
end
";

/// **Figure 4** — the calculator panel defining the `SquareRoot` task
/// (Newton–Raphson), built by button presses, trial-run on `a = 2`.
pub fn figure4() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4 — Calculator panel: SquareRoot task (Newton–Raphson)"
    );

    // Immediate mode: the calculator evaluates as you type.
    let mut panel = Panel::new();
    panel.begin_task("SquareRoot");
    panel.declare_in("a", Value::Num(2.0)).unwrap();
    panel.declare_out("x").unwrap();
    panel.declare_local("g").unwrap();
    panel.declare_local("prev").unwrap();
    panel
        .press_all([Button::Var("a".into()), Button::Op('/'), Button::Digit(2)])
        .unwrap();
    let g0 = panel.store("g").unwrap();
    let _ = writeln!(out, "panel: a / 2 [STO g] -> {g0}   (instant feedback)");
    panel.press(Button::Digit(0)).unwrap();
    panel.store("prev").unwrap();
    panel.record_line("while abs(g - prev) > 1e-12 do").unwrap();
    panel.record_line("prev := g").unwrap();
    panel.record_line("g := (g + a / g) / 2").unwrap();
    panel.record_line("end").unwrap();
    panel.record_line("x := g").unwrap();
    let (prog, _src) = panel.finish_task().unwrap();

    // The recorded program equals the canonical Figure 4 source.
    let reference = parser::parse_program(SQUARE_ROOT_SRC).unwrap();
    debug_assert_eq!(prog, reference);
    out.push('\n');
    out.push_str("program (lower window):\n");
    out.push_str(&pretty::print_program(&prog));

    // Trial run, through the same compile-once bytecode path the
    // executor uses (the tree-walker stays available via `--reference`).
    let outcome = banger_calc::vm::compile_and_run(
        &prog,
        &[("a".to_string(), Value::Num(2.0))].into_iter().collect(),
        banger_calc::InterpConfig::default(),
    )
    .unwrap();
    let x = outcome.outputs["x"].as_num("x").unwrap();
    let _ = writeln!(
        out,
        "\ntrial run: a = 2  =>  x = {x}  ({} ops, |x - sqrt(2)| = {:.2e})",
        outcome.ops,
        (x - 2.0_f64.sqrt()).abs()
    );
    out
}

/// Builds the complete Figure-1 LU project (design + programs + default
/// machine) — the shared starting point for examples and benches.
pub fn lu_project(n: usize, machine: Machine) -> Project {
    let mut p = Project::new(format!("LU-{n}x{n}"), generators::lu_hierarchical(n));
    *p.library_mut() = lu_program_library(n);
    p.set_machine(machine);
    p
}

/// Executes the LU project end-to-end and verifies the answer against the
/// reference solver; returns a one-line report. Used by `repro` to show
/// that the reproduced environment is not just plumbing.
pub fn lu_end_to_end(n: usize) -> String {
    let mut p = lu_project(n, Machine::new(Topology::hypercube(2), figure3_params()));
    let (a, b) = test_system(n);
    let report = p.run(&lu_inputs(&a, &b)).expect("LU executes");
    let got = report.outputs["x"].as_array("x").unwrap().to_vec();
    let want = solve_reference(&a, &b);
    let err = got
        .iter()
        .zip(&want)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0f64, f64::max);
    format!(
        "LU {n}x{n}: executed {} task runs on {} threads, max |x - x_ref| = {err:.2e}",
        report.runs.len(),
        report
            .runs
            .iter()
            .map(|r| r.worker)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_contains_structure() {
        let text = figure1();
        assert!(text.contains("Figure 1"));
        assert!(text.contains("flattened: 11 tasks"), "{text}");
        assert!(text.contains("subgraph cluster"));
        assert!(text.contains("fan1"));
        assert!(text.contains("[\"A\", \"b\"]"));
    }

    #[test]
    fn figure2_lists_all_topologies() {
        let text = figure2();
        for name in [
            "hypercube-3",
            "mesh-4x4",
            "tree-2x3",
            "star-8",
            "full-8",
            "ring-8",
        ] {
            assert!(text.contains(name), "missing {name}:\n{text}");
        }
        // hypercube-3 diameter is 3
        let line = text.lines().find(|l| l.contains("hypercube-3")).unwrap();
        assert!(line.contains(" 3"), "{line}");
    }

    #[test]
    fn figure3_has_gantts_and_speedup() {
        let text = figure3();
        assert!(text.matches("Gantt chart").count() == 3, "{text}");
        assert!(text.contains("Predicted speedup"));
        assert!(text.contains("8 procs"));
    }

    #[test]
    fn figure4_runs_newton_raphson() {
        let text = figure4();
        assert!(text.contains("task SquareRoot"));
        assert!(text.contains("trial run"));
        assert!(text.contains("1.4142135623"), "{text}");
    }

    #[test]
    fn lu_end_to_end_is_accurate() {
        let line = lu_end_to_end(4);
        assert!(line.contains("max |x - x_ref|"));
        // extract exponent: must be tiny
        assert!(
            line.contains("e-1") || line.contains("e-9") || line.contains("0.00e0"),
            "{line}"
        );
    }
}
