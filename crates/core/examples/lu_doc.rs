//! Prints the LU-3 example project in the `.bang` document format.
//!
//! Regenerates `examples/projects/lu3.bang`:
//!
//! ```text
//! cargo run -p banger --example lu_doc > examples/projects/lu3.bang
//! ```

use banger::figures;
use banger_machine::{Machine, MachineParams, Topology};

fn main() {
    let p = figures::lu_project(
        3,
        Machine::new(Topology::hypercube(2), MachineParams::default()),
    );
    print!("{}", banger::print_project(&p));
}
