//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no crates.io access, so this crate provides the
//! two pieces the executor uses:
//!
//! * `crossbeam::channel::unbounded` — a multi-producer **multi-consumer**
//!   unbounded channel (std's `mpsc::Receiver` is single-consumer, hence the
//!   hand-rolled queue). Disconnect semantics match crossbeam: `recv` errors
//!   once the queue is empty and every sender is gone; `send` errors once
//!   every receiver is gone.
//! * `crossbeam::deque` — a Chase–Lev work-stealing deque
//!   ([`deque::Worker`] / [`deque::Stealer`]), the lock-free structure the
//!   work-stealing executor schedules ready tasks through. One owner pushes
//!   and pops LIFO at the bottom; any number of thieves steal FIFO from the
//!   top.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.items.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.senders += 1;
            drop(st);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers += 1;
            drop(st);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                // Wake blocked receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
        }
    }
}

pub mod deque {
    //! A Chase–Lev work-stealing deque (Chase & Lev, *Dynamic Circular
    //! Work-Stealing Deque*, SPAA '05), with the memory orderings of Lê
    //! et al., *Correct and Efficient Work-Stealing for Weak Memory
    //! Models* (PPoPP '13).
    //!
    //! One [`Worker`] owns the bottom end: `push` and `pop` are
    //! uncontended single-thread operations in the common case and pay
    //! one fence each. Any number of [`Stealer`] handles take from the
    //! top end with a CAS. The only lock in the structure guards the
    //! retired-buffer list touched exclusively during growth; every
    //! push/pop/steal on the hot path is lock-free.
    //!
    //! Grown-out-of buffers are retired, not freed, until the deque
    //! drops: a thief that loaded the old buffer pointer may still be
    //! reading a slot from it, and its CAS on `top` decides whether that
    //! speculative read is kept or forgotten.

    use std::cell::UnsafeCell;
    use std::marker::PhantomData;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
    use std::sync::{Arc, Mutex};

    /// The result of a [`Stealer::steal`] attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The deque was empty.
        Empty,
        /// Took the oldest item.
        Success(T),
        /// Lost a race with the owner or another thief; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen value, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }

        /// True when the deque was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// Fixed-capacity circular slot array. Indexed by the *logical*
    /// position (monotonic), masked down to a physical slot.
    struct Buffer<T> {
        slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
        mask: usize,
    }

    impl<T> Buffer<T> {
        fn alloc(cap: usize) -> *mut Buffer<T> {
            debug_assert!(cap.is_power_of_two());
            let slots = (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect::<Vec<_>>()
                .into_boxed_slice();
            Box::into_raw(Box::new(Buffer {
                slots,
                mask: cap - 1,
            }))
        }

        fn cap(&self) -> usize {
            self.slots.len()
        }

        /// Owner-only write of logical slot `i`.
        unsafe fn write(&self, i: isize, v: T) {
            let cell = &self.slots[i as usize & self.mask];
            (*cell.get()).write(v);
        }

        /// Owner read of logical slot `i` (slot known to be owned).
        unsafe fn read(&self, i: isize) -> T {
            let cell = &self.slots[i as usize & self.mask];
            (*cell.get()).assume_init_read()
        }

        /// Thief read: bitwise copy whose validity is only established
        /// by a subsequent successful CAS on `top`. Returned as
        /// `MaybeUninit` so a lost race discards bytes, not a `T`.
        unsafe fn read_speculative(&self, i: isize) -> MaybeUninit<T> {
            let cell = &self.slots[i as usize & self.mask];
            std::ptr::read(cell.get())
        }
    }

    struct Inner<T> {
        /// Next logical slot to steal from.
        top: AtomicIsize,
        /// Next logical slot the owner pushes to.
        bottom: AtomicIsize,
        buffer: AtomicPtr<Buffer<T>>,
        /// Buffers grown out of, kept alive until the deque drops (a
        /// thief may still hold a pointer into one). Touched only by the
        /// owner during growth and by `drop`.
        retired: Mutex<Vec<*mut Buffer<T>>>,
    }

    unsafe impl<T: Send> Send for Inner<T> {}
    unsafe impl<T: Send> Sync for Inner<T> {}

    impl<T> Drop for Inner<T> {
        fn drop(&mut self) {
            let t = *self.top.get_mut();
            let b = *self.bottom.get_mut();
            let buf = *self.buffer.get_mut();
            unsafe {
                for i in t..b {
                    drop((*buf).read(i));
                }
                drop(Box::from_raw(buf));
                for old in self
                    .retired
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .drain(..)
                {
                    drop(Box::from_raw(old));
                }
            }
        }
    }

    /// The owning end of the deque: single-threaded `push`/`pop` at the
    /// bottom. `!Sync` by construction — hand [`Worker::stealer`]s to
    /// other threads instead.
    pub struct Worker<T> {
        inner: Arc<Inner<T>>,
        /// Opts out of `Sync`: two threads pushing would race.
        _not_sync: PhantomData<std::cell::Cell<()>>,
    }

    unsafe impl<T: Send> Send for Worker<T> {}

    /// A thief's handle: `steal` takes the oldest item with one CAS.
    pub struct Stealer<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Worker::new()
        }
    }

    impl<T> Worker<T> {
        /// An empty deque with a small default capacity (grows as
        /// needed; old buffers are retired, never freed mid-flight).
        pub fn new() -> Self {
            Worker::with_capacity(64)
        }

        /// An empty deque sized for `cap` items up front (rounded up to
        /// a power of two), so a run of known size never grows.
        pub fn with_capacity(cap: usize) -> Self {
            let cap = cap.max(2).next_power_of_two();
            Worker {
                inner: Arc::new(Inner {
                    top: AtomicIsize::new(0),
                    bottom: AtomicIsize::new(0),
                    buffer: AtomicPtr::new(Buffer::alloc(cap)),
                    retired: Mutex::new(Vec::new()),
                }),
                _not_sync: PhantomData,
            }
        }

        /// A new thief handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        /// True when no items are visible (owner's view).
        pub fn is_empty(&self) -> bool {
            let b = self.inner.bottom.load(Ordering::Relaxed);
            let t = self.inner.top.load(Ordering::Relaxed);
            t >= b
        }

        /// Pushes an item at the bottom. Never blocks; grows the buffer
        /// when full.
        pub fn push(&self, v: T) {
            let b = self.inner.bottom.load(Ordering::Relaxed);
            let t = self.inner.top.load(Ordering::Acquire);
            let mut buf = self.inner.buffer.load(Ordering::Relaxed);
            unsafe {
                if b - t >= (*buf).cap() as isize {
                    buf = self.grow(buf, t, b);
                }
                (*buf).write(b, v);
            }
            // Publish the slot before publishing the new bottom.
            self.inner.bottom.store(b + 1, Ordering::Release);
        }

        /// Pops the most recently pushed item (LIFO). The race with
        /// thieves on the last item is resolved by a CAS on `top`.
        pub fn pop(&self) -> Option<T> {
            let b = self.inner.bottom.load(Ordering::Relaxed) - 1;
            let buf = self.inner.buffer.load(Ordering::Relaxed);
            self.inner.bottom.store(b, Ordering::Relaxed);
            // The store above and the load below must not reorder: a
            // thief must either see the reserved bottom or we must see
            // its advanced top (store-buffering pattern).
            fence(Ordering::SeqCst);
            let t = self.inner.top.load(Ordering::Relaxed);
            if t > b {
                // Already empty; restore.
                self.inner.bottom.store(b + 1, Ordering::Relaxed);
                return None;
            }
            if t == b {
                // Last item: win it against thieves or give it up.
                let won = self
                    .inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.inner.bottom.store(b + 1, Ordering::Relaxed);
                return won.then(|| unsafe { (*buf).read(b) });
            }
            Some(unsafe { (*buf).read(b) })
        }

        /// Doubles the buffer, copying the live range `t..b`. The old
        /// buffer is retired, not freed: thieves may still read it.
        unsafe fn grow(&self, old: *mut Buffer<T>, t: isize, b: isize) -> *mut Buffer<T> {
            let new = Buffer::alloc((*old).cap() * 2);
            for i in t..b {
                (*new).write(i, (*old).read_speculative(i).assume_init());
            }
            self.inner.buffer.store(new, Ordering::Release);
            self.inner
                .retired
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(old);
            new
        }
    }

    impl<T> Stealer<T> {
        /// True when no items are visible to this thief.
        pub fn is_empty(&self) -> bool {
            let t = self.inner.top.load(Ordering::SeqCst);
            let b = self.inner.bottom.load(Ordering::SeqCst);
            t >= b
        }

        /// Attempts to steal the oldest item. [`Steal::Retry`] means a
        /// race was lost, not that the deque is empty.
        pub fn steal(&self) -> Steal<T> {
            let t = self.inner.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.inner.bottom.load(Ordering::Acquire);
            if t >= b {
                return Steal::Empty;
            }
            // Speculative read; only a successful CAS on `top` makes the
            // bytes ours (a concurrent owner wrap-around can overwrite
            // the slot, but then `top` has moved and the CAS fails).
            let buf = self.inner.buffer.load(Ordering::Acquire);
            let v = unsafe { (*buf).read_speculative(t) };
            if self
                .inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                return Steal::Retry; // Discards bytes, not a live T.
            }
            Steal::Success(unsafe { v.assume_init() })
        }
    }
}

#[cfg(test)]
mod deque_tests {
    use super::deque::{Steal, Worker};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn lifo_pop_fifo_steal() {
        let w = Worker::new();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3), "owner pops newest");
        assert_eq!(s.steal().success(), Some(1), "thief steals oldest");
        assert_eq!(s.steal().success(), Some(2));
        assert!(w.pop().is_none());
        assert!(s.steal().is_empty());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let w = Worker::with_capacity(2);
        let s = w.stealer();
        for i in 0..1000 {
            w.push(i);
        }
        // Interleave both ends; every item comes out exactly once.
        let mut got = vec![false; 1000];
        loop {
            match s.steal() {
                Steal::Success(i) => {
                    assert!(!std::mem::replace(&mut got[i as usize], true));
                }
                Steal::Empty => break,
                Steal::Retry => {}
            }
            if let Some(i) = w.pop() {
                assert!(!std::mem::replace(&mut got[i as usize], true));
            }
        }
        while let Some(i) = w.pop() {
            assert!(!std::mem::replace(&mut got[i as usize], true));
        }
        assert!(got.iter().all(|&g| g), "all items delivered exactly once");
    }

    #[test]
    fn concurrent_thieves_deliver_each_item_once() {
        const ITEMS: usize = 20_000;
        const THIEVES: usize = 3;
        let w = Worker::with_capacity(4);
        let taken = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..THIEVES {
                let s = w.stealer();
                let taken = Arc::clone(&taken);
                let sum = Arc::clone(&sum);
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            taken.fetch_add(1, Ordering::Relaxed);
                            sum.fetch_add(v, Ordering::Relaxed);
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if taken.load(Ordering::SeqCst) == ITEMS {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            // Owner pushes everything, popping now and then to fight
            // the thieves over the bottom end.
            for i in 0..ITEMS {
                w.push(i + 1);
                if i % 7 == 0 {
                    if let Some(v) = w.pop() {
                        taken.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                }
            }
            while let Some(v) = w.pop() {
                taken.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(v, Ordering::Relaxed);
            }
            // Thieves drain stragglers and observe the final count.
        });
        assert_eq!(taken.load(Ordering::SeqCst), ITEMS);
        assert_eq!(sum.load(Ordering::SeqCst), ITEMS * (ITEMS + 1) / 2);
    }

    #[test]
    fn drop_releases_undelivered_items() {
        let probe = Arc::new(());
        {
            let w = Worker::with_capacity(2);
            for _ in 0..40 {
                w.push(Arc::clone(&probe)); // forces growth + retirement
            }
            let _ = w.pop();
            let _ = w.stealer().steal();
            assert_eq!(Arc::strong_count(&probe), 39);
        }
        assert_eq!(Arc::strong_count(&probe), 1, "no leaks, no double drops");
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_fan_in() {
        let (tx, rx) = channel::unbounded::<u32>();
        let (out_tx, out_rx) = channel::unbounded::<u32>();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rx = rx.clone();
                let out_tx = out_tx.clone();
                scope.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        out_tx.send(v * 2).unwrap();
                    }
                });
            }
            drop(rx);
            drop(out_tx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut got: Vec<u32> = (0..100).map(|_| out_rx.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
            assert!(out_rx.recv().is_err());
        });
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
