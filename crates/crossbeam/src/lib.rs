//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no crates.io access, so this crate provides the
//! one piece the executor uses: `crossbeam::channel::unbounded`, a
//! multi-producer **multi-consumer** unbounded channel (std's `mpsc::Receiver`
//! is single-consumer, hence the hand-rolled queue). Disconnect semantics
//! match crossbeam: `recv` errors once the queue is empty and every sender is
//! gone; `send` errors once every receiver is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.items.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.senders += 1;
            drop(st);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers += 1;
            drop(st);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                // Wake blocked receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_fan_in() {
        let (tx, rx) = channel::unbounded::<u32>();
        let (out_tx, out_rx) = channel::unbounded::<u32>();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rx = rx.clone();
                let out_tx = out_tx.clone();
                scope.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        out_tx.send(v * 2).unwrap();
                    }
                });
            }
            drop(rx);
            drop(out_tx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut got: Vec<u32> = (0..100).map(|_| out_rx.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
            assert!(out_rx.recv().is_err());
        });
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
