#![warn(missing_docs)]

//! # banger-sim — discrete-event simulation of scheduled designs
//!
//! Banger promised "trial runs of tasks or entire programs". Single-task
//! trial runs live in `banger-calc`; *entire-program* trial runs are this
//! crate: a discrete-event simulator that executes a
//! [`Schedule`](banger_sched::Schedule) on the
//! four-parameter machine model with **link-accurate messaging** — every
//! message traverses its route hop by hop, queueing behind other traffic
//! on busy links.
//!
//! The simulator answers the question the paper's Figure 3 Gantt charts
//! raise: *does the predicted schedule survive contact with the network?*
//! [`SimResult::achieved`] is the as-executed timeline;
//! [`compare`](SimResult::compare) reports predicted-vs-achieved makespan.
//!
//! Processors execute their assigned task copies in schedule order
//! (static-schedule semantics); a task starts when its processor is free
//! and all of its input messages have arrived.

pub mod sim;

pub use sim::{simulate, MsgRecord, SimError, SimOptions, SimResult, SimStats};
