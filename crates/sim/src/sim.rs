//! The discrete-event engine.

use banger_machine::{LinkId, Machine, ProcId, SwitchingMode};
use banger_sched::Schedule;
use banger_taskgraph::{TaskGraph, TaskId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Simulation options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Safety valve: abort after this many events (runaway protection).
    pub max_events: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_events: 50_000_000,
        }
    }
}

/// Why a simulation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The schedule does not cover every task.
    Unplaced(TaskId),
    /// A message route does not exist (disconnected machine).
    NoRoute(ProcId, ProcId),
    /// The event budget was exhausted.
    EventLimit(u64),
    /// The simulation deadlocked: processors are idle but tasks remain.
    /// Indicates an inconsistent schedule (should be impossible for
    /// validated schedules).
    Deadlock,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Unplaced(t) => write!(f, "schedule does not place task {t}"),
            SimError::NoRoute(a, b) => write!(f, "no route between {a} and {b}"),
            SimError::EventLimit(n) => write!(f, "event limit {n} exceeded"),
            SimError::Deadlock => write!(f, "simulation deadlocked"),
        }
    }
}

impl std::error::Error for SimError {}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimStats {
    /// Messages injected into the network (excludes local hand-offs).
    pub messages: u64,
    /// Total link traversals (sum of hops over all messages).
    pub hops: u64,
    /// Total time messages spent queueing for busy links.
    pub queue_delay: f64,
    /// Events processed.
    pub events: u64,
}

/// One simulated network message, for traces and animations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgRecord {
    /// Sending processor.
    pub src: ProcId,
    /// Receiving processor.
    pub dst: ProcId,
    /// When the producing task finished (message creation).
    pub inject: f64,
    /// When the message arrived at `dst`.
    pub arrival: f64,
    /// Data units carried.
    pub volume: f64,
}

/// The result of simulating a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The as-executed timeline (same placement structure as the input
    /// schedule, with achieved start/finish times).
    pub achieved: Schedule,
    /// The input schedule's predicted makespan.
    pub predicted_makespan: f64,
    /// Traffic statistics.
    pub stats: SimStats,
    /// Every network message, in injection order (for animation replays).
    pub messages: Vec<MsgRecord>,
}

impl SimResult {
    /// Achieved makespan.
    pub fn achieved_makespan(&self) -> f64 {
        self.achieved.makespan()
    }

    /// `achieved / predicted` — 1.0 means the prediction was exact;
    /// above 1.0 means the network was more contended than the scheduler
    /// assumed.
    pub fn compare(&self) -> f64 {
        if self.predicted_makespan == 0.0 {
            1.0
        } else {
            self.achieved_makespan() / self.predicted_makespan
        }
    }
}

/// One task copy known to the simulator.
#[derive(Debug, Clone)]
struct CopyState {
    task: TaskId,
    proc: ProcId,
    primary: bool,
    /// Predicted start (used only to fix per-processor execution order).
    predicted_start: f64,
    /// Predicted finish (used to choose which copy feeds which consumer).
    predicted_finish: f64,
    /// Inputs not yet arrived at `proc`.
    missing_inputs: usize,
    /// Latest input arrival so far.
    ready_at: f64,
    started: bool,
}

/// Events, ordered by time then sequence for determinism.
#[derive(Debug, Clone, Copy)]
enum EventKind {
    /// A task copy finished executing.
    TaskDone { copy: usize },
    /// A message finished crossing one link and is ready for the next.
    MsgHop { msg: usize, hop: usize },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

#[derive(Debug, Clone)]
struct Message<'a> {
    /// Directed links along the route, borrowed from the machine's routing
    /// table — the simulator allocates no per-message route storage.
    route: &'a [LinkId],
    src: ProcId,
    dst: ProcId,
    volume: f64,
    /// Destination copies whose input count this message satisfies.
    dst_copies: Vec<usize>,
    /// When the producing task finished.
    inject: f64,
}

/// Simulates `schedule` executing `g` on `m`. The schedule must cover all
/// tasks (it is re-checked here because simulation is often run on
/// schedules loaded from files).
///
/// ```
/// use banger_machine::{Machine, MachineParams, Topology};
/// use banger_sim::{simulate, SimOptions};
/// use banger_taskgraph::generators;
/// let g = generators::gauss_elimination(4, 2.0, 1.0);
/// let m = Machine::new(Topology::hypercube(2), MachineParams::default());
/// let s = banger_sched::mh::mh(&g, &m);
/// let r = simulate(&g, &m, &s, SimOptions::default()).unwrap();
/// assert!(r.compare() >= 0.99); // MH's prediction holds up
/// ```
pub fn simulate(
    g: &TaskGraph,
    m: &Machine,
    schedule: &Schedule,
    options: SimOptions,
) -> Result<SimResult, SimError> {
    // ---- Build copy table --------------------------------------------
    let mut copies: Vec<CopyState> = Vec::new();
    let mut copies_of: Vec<Vec<usize>> = vec![Vec::new(); g.task_count()];
    for p in schedule.placements() {
        copies_of[p.task.index()].push(copies.len());
        copies.push(CopyState {
            task: p.task,
            proc: p.proc,
            primary: p.primary,
            predicted_start: p.start,
            predicted_finish: p.finish,
            missing_inputs: g.in_degree(p.task),
            ready_at: 0.0,
            started: false,
        });
    }
    for t in g.task_ids() {
        if copies_of[t.index()].is_empty() {
            return Err(SimError::Unplaced(t));
        }
    }

    // ---- Wire producers to consumers ---------------------------------
    // For each consumer copy and each in-edge, pick the producer copy with
    // the cheapest predicted arrival; group messages per (producer copy,
    // destination processor) so a producer sends one message per distinct
    // destination per edge.
    // feeds[producer_copy] = list of (edge volume, dst proc, dst copies)
    #[derive(Clone)]
    struct Feed {
        volume: f64,
        dst: ProcId,
        dst_copies: Vec<usize>,
    }
    let mut feeds: Vec<Vec<Feed>> = vec![Vec::new(); copies.len()];
    for (ci, c) in copies.iter().enumerate() {
        for &e in g.in_edges(c.task) {
            let edge = g.edge(e);
            // Cheapest predicted source copy.
            let src_copy = copies_of[edge.src.index()]
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let pa = predicted_arrival(&copies[a], c.proc, edge.volume, m);
                    let pb = predicted_arrival(&copies[b], c.proc, edge.volume, m);
                    pa.total_cmp(&pb).then(a.cmp(&b))
                })
                .expect("every task has a copy");
            if copies[src_copy].proc == c.proc {
                continue; // local: handled at TaskDone with zero delay
            }
            if m.routing().hops(copies[src_copy].proc, c.proc).is_none() {
                return Err(SimError::NoRoute(copies[src_copy].proc, c.proc));
            }
            // Merge into an existing feed to the same destination with the
            // same volume class (one message per edge per destination).
            let fs = &mut feeds[src_copy];
            if let Some(f) = fs
                .iter_mut()
                .find(|f| f.dst == c.proc && f.volume == edge.volume && !f.dst_copies.contains(&ci))
            {
                f.dst_copies.push(ci);
            } else {
                fs.push(Feed {
                    volume: edge.volume,
                    dst: c.proc,
                    dst_copies: vec![ci],
                });
            }
        }
    }
    // Local hand-offs: consumer copies fed by a same-proc producer copy.
    // local_feeds[producer_copy] = consumer copies satisfied at finish.
    let mut local_feeds: Vec<Vec<usize>> = vec![Vec::new(); copies.len()];
    for (ci, c) in copies.iter().enumerate() {
        for &e in g.in_edges(c.task) {
            let edge = g.edge(e);
            let src_copy = copies_of[edge.src.index()]
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let pa = predicted_arrival(&copies[a], c.proc, edge.volume, m);
                    let pb = predicted_arrival(&copies[b], c.proc, edge.volume, m);
                    pa.total_cmp(&pb).then(a.cmp(&b))
                })
                .unwrap();
            if copies[src_copy].proc == c.proc {
                local_feeds[src_copy].push(ci);
            }
        }
    }

    // ---- Per-processor execution order (predicted start order) -------
    let nprocs = m.processors();
    let mut proc_queue: Vec<Vec<usize>> = vec![Vec::new(); nprocs];
    for (ci, c) in copies.iter().enumerate() {
        proc_queue[c.proc.index()].push(ci);
    }
    for q in &mut proc_queue {
        q.sort_by(|&a, &b| {
            copies[a]
                .predicted_start
                .total_cmp(&copies[b].predicted_start)
                .then(a.cmp(&b))
        });
    }
    let mut proc_next: Vec<usize> = vec![0; nprocs];
    let mut proc_free: Vec<f64> = vec![0.0; nprocs];

    // ---- Event loop ----------------------------------------------------
    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut stats = SimStats::default();
    let mut messages: Vec<Message<'_>> = Vec::new();
    let mut msg_records: Vec<MsgRecord> = Vec::new();
    // Dense per-link busy horizon, indexed by LinkId.
    let mut link_free: Vec<f64> = vec![0.0; m.routing().directed_links()];
    let mut achieved = Schedule::new(format!("{}+sim", schedule.heuristic()), g.task_count());
    let mut remaining = copies.len();

    let hop_extra = match m.params().switching {
        SwitchingMode::StoreAndForward => 0.0,
        SwitchingMode::CutThrough { hop_latency } => hop_latency,
    };

    // Try to start the next task(s) on processor `p` at time `now`.
    // Returns events to push.
    macro_rules! try_dispatch {
        ($p:expr, $now:expr) => {{
            let pi: usize = $p;
            loop {
                let Some(&ci) = proc_queue[pi].get(proc_next[pi]) else {
                    break;
                };
                let c = &copies[ci];
                if c.started || c.missing_inputs > 0 {
                    break; // schedule order: wait for this copy's inputs
                }
                let (task, primary, ready_at) = (c.task, c.primary, c.ready_at);
                let start = ready_at.max(proc_free[pi]).max($now);
                let dur = m.exec_time(g.task(task).weight, ProcId(pi as u32));
                let finish = start + dur;
                copies[ci].started = true;
                proc_next[pi] += 1;
                proc_free[pi] = finish;
                achieved.place(task, ProcId(pi as u32), start, finish, primary);
                seq += 1;
                heap.push(Event {
                    time: finish,
                    seq,
                    kind: EventKind::TaskDone { copy: ci },
                });
            }
        }};
    }

    for p in 0..nprocs {
        try_dispatch!(p, 0.0);
    }

    while let Some(ev) = heap.pop() {
        stats.events += 1;
        if stats.events > options.max_events {
            return Err(SimError::EventLimit(options.max_events));
        }
        match ev.kind {
            EventKind::TaskDone { copy } => {
                remaining -= 1;
                let finish = ev.time;
                let proc = copies[copy].proc;
                // Local hand-offs.
                for &dst in &local_feeds[copy].clone() {
                    let d = &mut copies[dst];
                    d.missing_inputs -= 1;
                    d.ready_at = d.ready_at.max(finish);
                }
                try_dispatch!(proc.index(), finish);
                // Inject network messages.
                for f in &feeds[copy] {
                    let route = m.routing().link_slice(proc, f.dst);
                    debug_assert!(!route.is_empty());
                    let msg_id = messages.len();
                    messages.push(Message {
                        route,
                        src: proc,
                        dst: f.dst,
                        volume: f.volume,
                        dst_copies: f.dst_copies.clone(),
                        inject: finish,
                    });
                    stats.messages += 1;
                    // The message enters the first link after the startup
                    // cost; MsgHop(hop=0) fires when the first link crossing
                    // completes.
                    let inject = finish + m.params().msg_startup;
                    let link = route[0];
                    let begin = inject.max(link_free[link.index()]);
                    stats.queue_delay += begin - inject;
                    let transfer = m.link_transfer_time(f.volume);
                    link_free[link.index()] = begin + transfer;
                    stats.hops += 1;
                    seq += 1;
                    heap.push(Event {
                        time: begin + transfer,
                        seq,
                        kind: EventKind::MsgHop {
                            msg: msg_id,
                            hop: 0,
                        },
                    });
                }
                // A finished task may unblock nothing locally but free the
                // processor for the next queued copy (handled above).
            }
            EventKind::MsgHop { msg, hop } => {
                let now = ev.time;
                let msgref = &messages[msg];
                if hop + 1 < msgref.route.len() {
                    // Cross the next link.
                    let link = msgref.route[hop + 1];
                    let depart = now + hop_extra;
                    let begin = depart.max(link_free[link.index()]);
                    stats.queue_delay += begin - depart;
                    let transfer = m.link_transfer_time(msgref.volume);
                    link_free[link.index()] = begin + transfer;
                    stats.hops += 1;
                    seq += 1;
                    heap.push(Event {
                        time: begin + transfer,
                        seq,
                        kind: EventKind::MsgHop { msg, hop: hop + 1 },
                    });
                } else {
                    // Arrived at the destination processor. The per-hop
                    // latency applies to every hop (matching
                    // Machine::comm_time), including the final one.
                    let arrival = now + hop_extra;
                    msg_records.push(MsgRecord {
                        src: msgref.src,
                        dst: msgref.dst,
                        inject: msgref.inject,
                        arrival,
                        volume: msgref.volume,
                    });
                    let dsts = msgref.dst_copies.clone();
                    let mut procs_to_poke: Vec<usize> = Vec::new();
                    for dst in dsts {
                        let d = &mut copies[dst];
                        d.missing_inputs -= 1;
                        d.ready_at = d.ready_at.max(arrival);
                        procs_to_poke.push(d.proc.index());
                    }
                    procs_to_poke.sort_unstable();
                    procs_to_poke.dedup();
                    for p in procs_to_poke {
                        try_dispatch!(p, arrival);
                    }
                }
            }
        }
    }

    if remaining > 0 {
        return Err(SimError::Deadlock);
    }

    msg_records.sort_by(|a, b| {
        a.inject
            .total_cmp(&b.inject)
            .then(a.arrival.total_cmp(&b.arrival))
    });
    Ok(SimResult {
        achieved,
        predicted_makespan: schedule.makespan(),
        stats,
        messages: msg_records,
    })
}

/// Predicted arrival of data from `src` copy to processor `dst` using the
/// analytic machine formula and the schedule's predicted times — used only
/// to choose which copy feeds which consumer.
fn predicted_arrival(src: &CopyState, dst: ProcId, volume: f64, m: &Machine) -> f64 {
    src.predicted_finish + m.comm_time(src.proc, dst, volume)
}

#[cfg(test)]
mod tests {
    use super::*;
    use banger_machine::{MachineParams, Topology};
    use banger_sched::{dsh::dsh, list, mh::mh};
    use banger_taskgraph::generators;

    fn sim(g: &TaskGraph, m: &Machine, s: &Schedule) -> SimResult {
        simulate(g, m, s, SimOptions::default()).unwrap()
    }

    #[test]
    fn serial_schedule_simulates_exactly() {
        let g = generators::gauss_elimination(4, 2.0, 1.0);
        let m = Machine::new(Topology::single(), MachineParams::default());
        let s = list::serial(&g, &m);
        let r = sim(&g, &m, &s);
        assert!((r.compare() - 1.0).abs() < 1e-9, "ratio {}", r.compare());
        assert_eq!(r.stats.messages, 0);
        r.achieved.validate(&g, &m).unwrap();
    }

    #[test]
    fn contention_free_schedule_matches_prediction() {
        // Independent tasks: no messages, so ETF's analytic prediction is
        // exact.
        let g = generators::independent(8, 5.0);
        let m = Machine::new(Topology::fully_connected(4), MachineParams::default());
        let s = list::etf(&g, &m);
        let r = sim(&g, &m, &s);
        assert!((r.compare() - 1.0).abs() < 1e-9);
        assert_eq!(r.stats.messages, 0);
    }

    #[test]
    fn messages_counted_and_achieved_valid() {
        let g = generators::fork_join(4, 1.0, 6.0, 1.0, 3.0);
        let m = Machine::new(
            Topology::hypercube(2),
            MachineParams {
                msg_startup: 0.5,
                ..MachineParams::default()
            },
        );
        let s = list::etf(&g, &m);
        let r = sim(&g, &m, &s);
        if s.processors_used() > 1 {
            assert!(r.stats.messages > 0);
        }
        r.achieved.validate(&g, &m).unwrap();
        // Achieved can never beat the analytic prediction's physics.
        assert!(r.compare() >= 1.0 - 1e-9, "ratio {}", r.compare());
    }

    #[test]
    fn mh_prediction_tracks_simulation_closely() {
        // MH models hops and link contention, so its prediction should be
        // within a small factor of the simulated truth.
        let g = generators::gauss_elimination(6, 3.0, 4.0);
        for topo in [
            Topology::hypercube(2),
            Topology::mesh(2, 2),
            Topology::ring(4),
        ] {
            let m = Machine::new(
                topo,
                MachineParams {
                    msg_startup: 0.5,
                    ..MachineParams::default()
                },
            );
            let s = mh(&g, &m);
            let r = sim(&g, &m, &s);
            assert!(
                r.compare() < 1.5,
                "{}: achieved/predicted = {}",
                m.topology().name(),
                r.compare()
            );
        }
    }

    #[test]
    fn duplication_schedules_simulate() {
        let g = generators::fork_join(4, 2.0, 10.0, 2.0, 15.0);
        let m = Machine::new(
            Topology::fully_connected(4),
            MachineParams {
                msg_startup: 1.0,
                ..MachineParams::default()
            },
        );
        let s = dsh(&g, &m);
        let r = sim(&g, &m, &s);
        r.achieved.validate(&g, &m).unwrap();
        // Duplicates execute, so the achieved schedule has as many
        // placements as the input.
        assert_eq!(r.achieved.placements().len(), s.placements().len());
    }

    #[test]
    fn queue_delay_appears_under_contention() {
        // Two big messages must cross the same star hub link.
        let mut g = TaskGraph::new("clash");
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        let c = g.add_task("c", 1.0);
        g.add_edge(a, c, 50.0, "m1").unwrap();
        g.add_edge(b, c, 50.0, "m2").unwrap();
        let m = Machine::new(Topology::star(4), MachineParams::default());
        // Force a bad manual placement: a on P1, b on P2, c on P3.
        let mut s = Schedule::new("manual", 3);
        s.place(a, ProcId(1), 0.0, 1.0, true);
        s.place(b, ProcId(2), 0.0, 1.0, true);
        // analytic comm = 2 hops * 50 = 100 => c may start at 101
        s.place(c, ProcId(3), 101.0, 102.0, true);
        s.validate(&g, &m).unwrap();
        let r = sim(&g, &m, &s);
        // Hub link P0->P3 is shared: second transfer queues 50 units.
        assert!(r.stats.queue_delay > 0.0);
        assert!(r.achieved_makespan() > s.makespan());
    }

    #[test]
    fn incomplete_schedule_rejected() {
        let mut g = TaskGraph::new("two");
        g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        let m = Machine::new(Topology::single(), MachineParams::default());
        let mut s = Schedule::new("partial", 2);
        s.place(TaskId(0), ProcId(0), 0.0, 1.0, true);
        assert_eq!(
            simulate(&g, &m, &s, SimOptions::default()),
            Err(SimError::Unplaced(b))
        );
    }

    #[test]
    fn no_route_rejected() {
        let mut g = TaskGraph::new("pair");
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_edge(a, b, 5.0, "x").unwrap();
        let t = Topology::from_edges("split", 2, &[]).unwrap();
        let m = Machine::new(t, MachineParams::default());
        let mut s = Schedule::new("manual", 2);
        s.place(a, ProcId(0), 0.0, 1.0, true);
        s.place(b, ProcId(1), 100.0, 101.0, true);
        assert_eq!(
            simulate(&g, &m, &s, SimOptions::default()),
            Err(SimError::NoRoute(ProcId(0), ProcId(1)))
        );
    }

    #[test]
    fn cut_through_matches_analytic_when_uncontended() {
        // A single chain of cross-processor messages on a cut-through
        // machine: the simulated arrival must equal Machine::comm_time.
        let g = generators::chain(4, 2.0, 6.0);
        let m = Machine::new(
            Topology::linear(4),
            MachineParams {
                msg_startup: 0.5,
                transmission_rate: 3.0,
                switching: banger_machine::SwitchingMode::CutThrough { hop_latency: 0.25 },
                ..MachineParams::default()
            },
        );
        // Place each task on its own processor, spaced exactly at the
        // analytic arrival times.
        let mut s = Schedule::new("manual", 4);
        let mut start = 0.0;
        for i in 0..4u32 {
            let p = ProcId(i);
            let finish = start + m.exec_time(2.0, p);
            s.place(TaskId(i), p, start, finish, true);
            if i < 3 {
                start = finish + m.comm_time(p, ProcId(i + 1), 6.0);
            }
        }
        s.validate(&g, &m).unwrap();
        let r = simulate(&g, &m, &s, SimOptions::default()).unwrap();
        assert!(
            (r.compare() - 1.0).abs() < 1e-9,
            "cut-through uncontended must be exact: {}",
            r.compare()
        );
        // Message records carry the right arrivals.
        for rec in &r.messages {
            let want = rec.inject + m.comm_time(rec.src, rec.dst, rec.volume);
            assert!((rec.arrival - want).abs() < 1e-9);
        }
    }

    #[test]
    fn event_limit_enforced() {
        let g = generators::gauss_elimination(6, 2.0, 1.0);
        let m = Machine::new(Topology::hypercube(2), MachineParams::default());
        let s = banger_sched::mh::mh(&g, &m);
        let err = simulate(&g, &m, &s, SimOptions { max_events: 3 }).unwrap_err();
        assert_eq!(err, SimError::EventLimit(3));
    }

    #[test]
    fn deterministic() {
        let g = generators::lattice(3, 3, 2.0, 3.0);
        let m = Machine::new(Topology::mesh(2, 2), MachineParams::default());
        let s = mh(&g, &m);
        let r1 = sim(&g, &m, &s);
        let r2 = sim(&g, &m, &s);
        assert_eq!(r1, r2);
    }

    #[test]
    fn all_heuristics_simulate_on_all_topologies() {
        let g = generators::gauss_elimination(5, 2.0, 2.0);
        for topo in [
            Topology::hypercube(2),
            Topology::mesh(2, 2),
            Topology::star(4),
            Topology::tree(2, 1),
            Topology::fully_connected(4),
            Topology::ring(4),
        ] {
            let m = Machine::new(
                topo,
                MachineParams {
                    msg_startup: 0.3,
                    process_startup: 0.1,
                    ..MachineParams::default()
                },
            );
            for name in banger_sched::HEURISTIC_NAMES.iter().chain(["DSH"].iter()) {
                let s = banger_sched::run_heuristic(name, &g, &m).unwrap();
                let r = simulate(&g, &m, &s, SimOptions::default())
                    .unwrap_or_else(|e| panic!("{name} on {}: {e}", m.topology().name()));
                r.achieved
                    .validate(&g, &m)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            }
        }
    }
}
