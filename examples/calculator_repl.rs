//! An interactive session with the Figure 4 calculator panel: immediate
//! expression evaluation, `STO` registers, and task recording.
//!
//! Run with: `cargo run --example calculator_repl` and type expressions;
//! or pipe a script: `echo "2 + sqrt(2)" | cargo run --example calculator_repl`.
//!
//! Commands:
//!   <expr>            evaluate immediately (the `=` key)
//!   sto <var> <expr>  evaluate and store in a register
//!   task <name>       begin recording a task
//!   in/out/local <v>  declare variables for the recording
//!   rec <line>        record a raw program line (while/if/end/...)
//!   finish            finish the recording, print and trial-run it
//!   tape              show the feedback tape
//!   quit              exit

use banger_calc::{interp, Button, Panel, Value};
use std::io::{self, BufRead, Write};

fn main() {
    let stdin = io::stdin();
    let mut panel = Panel::new();
    let mut finished: Option<banger_calc::Program> = None;

    println!("Banger calculator — type an expression, or `task <name>` to record (Ctrl-D to exit)");
    print!("> ");
    io::stdout().flush().unwrap();

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let line = line.trim();
        if line.is_empty() {
            print!("> ");
            io::stdout().flush().unwrap();
            continue;
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "quit" | "exit" => break,
            "tape" => {
                for entry in panel.tape() {
                    println!("  {entry}");
                }
            }
            "task" => {
                panel.begin_task(rest.trim());
                println!("recording task {:?}", rest.trim());
            }
            "in" => {
                // `in x = 3` gives the variable a trial value
                let (name, value) = rest.split_once('=').unwrap_or((rest, "0"));
                let trial = value.trim().parse().unwrap_or(0.0);
                match panel.declare_in(name.trim(), Value::Num(trial)) {
                    Ok(()) => println!("in {} (trial value {trial})", name.trim()),
                    Err(e) => println!("error: {e}"),
                }
            }
            "out" => match panel.declare_out(rest.trim()) {
                Ok(()) => println!("out {}", rest.trim()),
                Err(e) => println!("error: {e}"),
            },
            "local" => match panel.declare_local(rest.trim()) {
                Ok(()) => println!("local {}", rest.trim()),
                Err(e) => println!("error: {e}"),
            },
            "rec" => match panel.record_line(rest) {
                Ok(()) => println!("  | {rest}"),
                Err(e) => println!("error: {e}"),
            },
            "sto" => {
                let (var, expr) = rest.split_once(' ').unwrap_or((rest, ""));
                type_expr(&mut panel, expr);
                match panel.store(var) {
                    Ok(v) => println!("{var} := {v}"),
                    Err(e) => {
                        println!("error: {e}");
                        panel.press(Button::Clear).unwrap();
                    }
                }
            }
            "finish" => match panel.finish_task() {
                Ok((prog, src)) => {
                    println!("--- recorded program ---\n{src}");
                    finished = Some(prog);
                }
                Err(e) => println!("error: {e}"),
            },
            "run" => {
                // `run a=2 b=3` trial-runs the finished task
                if let Some(prog) = &finished {
                    let mut inputs = std::collections::BTreeMap::new();
                    for pair in rest.split_whitespace() {
                        if let Some((k, v)) = pair.split_once('=') {
                            if let Ok(num) = v.parse::<f64>() {
                                inputs.insert(k.to_string(), Value::Num(num));
                            }
                        }
                    }
                    match interp::run(prog, &inputs) {
                        Ok(out) => {
                            for (k, v) in &out.outputs {
                                println!("{k} = {v}");
                            }
                            println!("({} ops)", out.ops);
                        }
                        Err(e) => println!("error: {e}"),
                    }
                } else {
                    println!("no finished task; use `task`/`finish` first");
                }
            }
            _ => {
                // Immediate mode: the whole line is an expression.
                type_expr(&mut panel, line);
                match panel.equals() {
                    Ok(v) => println!("= {v}"),
                    Err(e) => {
                        println!("error: {e}");
                        panel.press(Button::Clear).unwrap();
                    }
                }
            }
        }
        print!("> ");
        io::stdout().flush().unwrap();
    }
    println!();
}

/// Feeds a typed expression through the panel's button interface, one
/// character at a time — the headless equivalent of clicking the keypad.
fn type_expr(panel: &mut Panel, expr: &str) {
    panel.press(Button::Clear).unwrap();
    let mut word = String::new();
    let flush = |panel: &mut Panel, word: &mut String| {
        if !word.is_empty() {
            panel.press(Button::Var(word.clone())).unwrap();
            word.clear();
        }
    };
    for c in expr.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' => word.push(c),
            '0'..='9' => {
                if word.is_empty() {
                    panel.press(Button::Digit(c as u8 - b'0')).unwrap();
                } else {
                    word.push(c);
                }
            }
            '.' => {
                flush(panel, &mut word);
                panel.press(Button::Dot).unwrap();
            }
            '+' | '-' | '*' | '/' | '^' | '%' => {
                flush(panel, &mut word);
                panel.press(Button::Op(c)).unwrap();
            }
            '(' => {
                // A pending word followed by `(` is a function button.
                if word.is_empty() {
                    panel.press(Button::LParen).unwrap();
                } else {
                    panel
                        .press(Button::Func(std::mem::take(&mut word)))
                        .unwrap();
                }
            }
            ')' => {
                flush(panel, &mut word);
                panel.press(Button::RParen).unwrap();
            }
            '[' => {
                flush(panel, &mut word);
                panel.press(Button::LBracket).unwrap();
            }
            ']' => {
                flush(panel, &mut word);
                panel.press(Button::RBracket).unwrap();
            }
            ',' => {
                flush(panel, &mut word);
                panel.press(Button::Comma).unwrap();
            }
            ' ' => flush(panel, &mut word),
            _ => {}
        }
    }
    flush(panel, &mut word);
}
