//! The paper's running example end-to-end: the Figure 1 hierarchical LU
//! design solving `Ax = b`, scheduled on hypercubes (Figure 3), simulated,
//! executed on threads, and verified against a reference solver.
//!
//! Run with: `cargo run --example lu_decomposition [-- n]` (default n=5).

use banger::figures;
use banger::lu::{lu_inputs, solve_reference, test_system};
use banger_machine::{Machine, Topology};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5)
        .clamp(2, 9);

    println!("=== Banger LU decomposition, {n}x{n} system ===\n");

    let machine = Machine::new(Topology::hypercube(2), figures::figure3_params());
    println!("target machine: {}\n", machine.describe());
    let mut project = figures::lu_project(n, machine);

    // Design statistics (the "instant feedback" display).
    let f = project.flatten().unwrap();
    let stats = banger_taskgraph::analysis::stats(&f.graph);
    println!(
        "design: {} tasks, {} arcs, width {}, critical path {:.1}, avg parallelism {:.2}\n",
        stats.tasks, stats.edges, stats.width, stats.cp_length, stats.average_parallelism
    );

    // Schedule with MH; show the Gantt chart.
    let schedule = project.schedule("MH").expect("schedules");
    println!("{}", project.gantt(&schedule).unwrap());

    // Whole-program trial run (discrete-event simulation).
    let sim = project.simulate(&schedule).expect("simulates");
    println!(
        "simulation: predicted makespan {:.2}, achieved {:.2} (ratio {:.3}), {} messages\n",
        sim.predicted_makespan,
        sim.achieved_makespan(),
        sim.compare(),
        sim.stats.messages
    );

    // Execute for real and verify.
    let (a, b) = test_system(n);
    let report = project.run(&lu_inputs(&a, &b)).expect("executes");
    let x = report.outputs["x"].as_array("x").unwrap().to_vec();
    let reference = solve_reference(&a, &b);
    let max_err = x
        .iter()
        .zip(&reference)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0f64, f64::max);
    println!(
        "executed {} task runs in {:?}",
        report.runs.len(),
        report.wall
    );
    println!("x = {x:?}");
    println!("max |x - x_ref| = {max_err:.3e}");
    assert!(max_err < 1e-9, "solution must match the reference solver");

    // Speedup prediction across hypercube sizes (Figure 3, right).
    let points = project
        .predict_speedup(
            &[
                Topology::single(),
                Topology::hypercube(1),
                Topology::hypercube(2),
                Topology::hypercube(3),
            ],
            figures::figure3_params(),
        )
        .unwrap();
    println!();
    println!(
        "{}",
        banger::speedup_chart(
            &format!("predicted speedup, LU {n}x{n} on hypercubes"),
            &points,
            40
        )
    );
}
