//! A parameter study — the workload the paper's introduction motivates: a
//! scientist sweeps a model parameter across many simulation runs and
//! wants them done in parallel *today*, not after learning MPI.
//!
//! Model: a damped oscillator `x'' = -k x - c x'` integrated with
//! semi-implicit Euler inside a PITS task; the study sweeps the damping
//! coefficient `c` and reports which value settles the system fastest.
//!
//! Run with: `cargo run --example parameter_study [-- runs]` (default 12).

use banger::project::Project;
use banger_calc::Value;
use banger_machine::{Machine, MachineParams, Topology};
use banger_taskgraph::HierGraph;
use std::collections::BTreeMap;

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12)
        .clamp(2, 64);

    // --- design: one simulation task per damping value, plus a picker ----
    let mut design = HierGraph::new("damping-study");
    let k_store = design.add_storage("k", 1.0);
    let best = design.add_task_with_program("pick_best", runs as f64, "PickBest");
    let out = design.add_storage("best", 2.0);
    design.add_flow(best, out).unwrap();
    for r in 0..runs {
        let sim = design.add_task_with_program(format!("run{r}"), 5_000.0, format!("Sim{r}"));
        design.add_flow(k_store, sim).unwrap();
        design
            .add_arc(sim, best, format!("settle{r}"), 1.0)
            .unwrap();
    }

    let mut project = Project::new("damping-study", design);

    // --- PITS tasks -------------------------------------------------------
    // Each run simulates 2000 steps with its own damping coefficient and
    // reports a settle metric: the remaining energy at the end.
    for r in 0..runs {
        let c = 0.05 + 0.4 * r as f64 / (runs - 1) as f64;
        let src = format!(
            "task Sim{r}
               in k
               out settle{r}
               local x, v, dt, i
             begin
               x := 1
               v := 0
               dt := 0.01
               for i := 1 to 2000 do
                 v := v + (0 - k * x - {c} * v) * dt
                 x := x + v * dt
               end
               settle{r} := k * x * x / 2 + v * v / 2
             end"
        );
        project.library_mut().add_source(&src).expect("sim parses");
    }
    let settles: Vec<String> = (0..runs).map(|r| format!("settle{r}")).collect();
    let mut pick_body = String::from("best := zeros(2) best[1] := 0 best[2] := settle0 ");
    for (r, s) in settles.iter().enumerate() {
        pick_body.push_str(&format!(
            "if {s} < best[2] then best[1] := {r} best[2] := {s} end "
        ));
    }
    project
        .library_mut()
        .add_source(&format!(
            "task PickBest in {} out best begin {pick_body} end",
            settles.join(", ")
        ))
        .expect("picker parses");

    // --- machine + schedule ------------------------------------------------
    project.set_machine(Machine::new(
        Topology::mesh(2, 4),
        MachineParams {
            msg_startup: 0.5,
            transmission_rate: 8.0,
            process_startup: 0.2,
            ..MachineParams::default()
        },
    ));
    let schedule = project.schedule("MH").expect("schedules");
    println!("{}", project.gantt(&schedule).unwrap());
    let g = project.flatten().unwrap().graph.clone();
    println!(
        "predicted: makespan {:.0}, speedup {:.2}x on 8-processor mesh\n",
        schedule.makespan(),
        schedule.speedup(&g, project.machine().unwrap())
    );

    // --- execute -----------------------------------------------------------
    let inputs: BTreeMap<String, Value> =
        [("k".to_string(), Value::Num(4.0))].into_iter().collect();
    let report = project.run(&inputs).expect("executes");
    let best = report.outputs["best"].as_array("best").unwrap();
    let best_run = best[0] as usize;
    let c_best = 0.05 + 0.4 * best_run as f64 / (runs - 1) as f64;
    println!(
        "{} simulations in {:?}; least residual energy: run {} (c = {:.3}, E = {:.3e})",
        runs, report.wall, best_run, c_best, best[1]
    );
    // Sanity: higher damping settles faster over this window, so the last
    // run should win.
    assert_eq!(best_run, runs - 1, "strongest damping should settle best");
}
