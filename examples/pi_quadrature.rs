//! A scientist's "quick-and-dirty" parallel program, exactly the audience
//! the paper targets: estimate π by midpoint quadrature of ∫₀¹ 4/(1+x²) dx,
//! with the interval split across parallel worker tasks.
//!
//! The design is generated programmatically (one worker node per chunk),
//! the workers are PITS programs, and the whole thing is scheduled,
//! simulated and executed.
//!
//! Run with: `cargo run --example pi_quadrature [-- workers intervals]`.

use banger::project::Project;
use banger_calc::Value;
use banger_machine::{Machine, MachineParams, Topology};
use banger_taskgraph::HierGraph;
use std::collections::BTreeMap;

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let intervals: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    assert!(workers >= 1 && intervals >= workers);

    // --- Step 1: the design -------------------------------------------
    let mut design = HierGraph::new("pi");
    let n_store = design.add_storage("n", 1.0);
    let result = design.add_storage("pi_hat", 1.0);
    let gather = design.add_task_with_program("gather", workers as f64, "Gather");
    design.add_flow(gather, result).unwrap();
    let chunk = intervals / workers;
    for w in 0..workers {
        let node = design.add_task_with_program(
            format!("chunk{w}"),
            chunk as f64 * 8.0,
            format!("Chunk{w}"),
        );
        design.add_flow(n_store, node).unwrap();
        design
            .add_arc(node, gather, format!("part{w}"), 1.0)
            .unwrap();
    }

    let mut project = Project::new("pi", design);

    // --- Step 3: the PITS tasks -----------------------------------------
    // Chunk w integrates x in [w/W, (w+1)/W) with `chunk` midpoints.
    for w in 0..workers {
        let lo = w * chunk;
        let src = format!(
            "task Chunk{w}
               in n
               out part{w}
               local i, x, h
             begin
               h := 1 / n
               part{w} := 0
               for i := {} to {} do
                 x := (i - 0.5) * h
                 part{w} := part{w} + 4 / (1 + x * x)
               end
               part{w} := part{w} * h
             end",
            lo + 1,
            lo + chunk,
        );
        project
            .library_mut()
            .add_source(&src)
            .expect("chunk parses");
    }
    let parts: Vec<String> = (0..workers).map(|w| format!("part{w}")).collect();
    let sum_lines: String = parts
        .iter()
        .map(|p| format!("pi_hat := pi_hat + {p} "))
        .collect();
    project
        .library_mut()
        .add_source(&format!(
            "task Gather in {} out pi_hat begin pi_hat := 0 {sum_lines} end",
            parts.join(", ")
        ))
        .expect("gather parses");

    // --- Step 2: the machine ---------------------------------------------
    let dim = (workers.next_power_of_two().trailing_zeros()).min(4);
    project.set_machine(Machine::new(
        Topology::hypercube(dim),
        MachineParams {
            msg_startup: 0.5,
            transmission_rate: 16.0,
            ..MachineParams::default()
        },
    ));

    // Schedule + predicted speedup.
    let schedule = project.schedule("MH").expect("schedules");
    println!("{}", project.gantt(&schedule).unwrap());
    let f = project.flatten().unwrap();
    println!(
        "predicted speedup on {} processors: {:.2}x\n",
        1usize << dim,
        schedule.speedup(
            &f.graph,
            &Machine::new(Topology::hypercube(dim), MachineParams::default())
        )
    );

    // --- Step 4: execute ---------------------------------------------------
    let inputs: BTreeMap<String, Value> = [("n".to_string(), Value::Num(intervals as f64))]
        .into_iter()
        .collect();
    let report = project.run(&inputs).expect("executes");
    let pi_hat = report.outputs["pi_hat"].as_num("pi_hat").unwrap();
    let err = (pi_hat - std::f64::consts::PI).abs();
    println!(
        "pi ≈ {pi_hat:.10}  (error {err:.2e}, {} tasks, wall {:?})",
        report.runs.len(),
        report.wall
    );
    assert!(err < 1e-6, "quadrature should be accurate");
}
