//! Quickstart: the paper's four-step workflow in ~60 lines.
//!
//! 1. draw a hierarchical dataflow graph;
//! 2. define a target machine;
//! 3. write the sequential tasks in the PITS calculator language;
//! 4. schedule, trial-run, and execute.
//!
//! Run with: `cargo run --example quickstart`

use banger::project::Project;
use banger_calc::Value;
use banger_machine::{Machine, MachineParams, Topology};
use banger_taskgraph::HierGraph;
use std::collections::BTreeMap;

fn main() {
    // Step 1 — the PITL design: split a vector, process both halves in
    // parallel, merge. Storage nodes (rectangles) hold named data; task
    // nodes (ovals) carry the programs.
    let mut design = HierGraph::new("quickstart");
    let input = design.add_storage("v", 8.0);
    let split = design.add_task_with_program("split", 10.0, "Split");
    let left = design.add_task_with_program("left", 40.0, "SumHalf");
    let right = design.add_task_with_program("right", 40.0, "SumSquares");
    let merge = design.add_task_with_program("merge", 5.0, "Merge");
    let output = design.add_storage("result", 1.0);
    design.add_flow(input, split).unwrap();
    design.add_arc(split, left, "lo", 4.0).unwrap();
    design.add_arc(split, right, "hi", 4.0).unwrap();
    design.add_arc(left, merge, "s1", 1.0).unwrap();
    design.add_arc(right, merge, "s2", 1.0).unwrap();
    design.add_flow(merge, output).unwrap();

    let mut project = Project::new("quickstart", design);

    // Step 3 — PITS tasks (normally typed on the calculator panel).
    for src in [
        "task Split in v out lo, hi local i, n, h begin
           n := len(v)  h := n / 2
           lo := zeros(h)  hi := zeros(n - h)
           for i := 1 to h do lo[i] := v[i] end
           for i := h + 1 to n do hi[i - h] := v[i] end
         end",
        "task SumHalf in lo out s1 begin s1 := sum(lo) end",
        "task SumSquares in hi out s2 local i begin
           s2 := 0
           for i := 1 to len(hi) do s2 := s2 + hi[i] ^ 2 end
         end",
        "task Merge in s1, s2 out result begin result := s1 + s2 end",
    ] {
        project.library_mut().add_source(src).expect("task parses");
    }

    // Step 2 — the target machine: a 4-processor hypercube with the
    // paper's four cost parameters.
    project.set_machine(Machine::new(
        Topology::hypercube(2),
        MachineParams {
            processor_speed: 1.0,
            process_startup: 0.5,
            msg_startup: 1.0,
            transmission_rate: 4.0,
            ..MachineParams::default()
        },
    ));

    // Schedule with the Mapping Heuristic and show the Gantt chart.
    let schedule = project.schedule("MH").expect("schedules");
    println!("{}", project.gantt(&schedule).unwrap());

    // Trial-run a single task (instant feedback on one node).
    let trial = project
        .trial_run(
            "SumSquares",
            &[("hi".to_string(), Value::array(vec![1.0, 2.0, 3.0]))]
                .into_iter()
                .collect(),
        )
        .unwrap();
    println!(
        "trial run SumSquares([1,2,3]) = {} ({} ops)\n",
        trial.outputs["s2"], trial.ops
    );

    // Step 4 — run the whole design for real on host threads.
    let v: Vec<f64> = (1..=8).map(|i| i as f64).collect();
    let inputs: BTreeMap<String, Value> =
        [("v".to_string(), Value::array(v))].into_iter().collect();
    let report = project.run(&inputs).expect("executes");
    println!(
        "executed {} tasks in {:?}; result = {}",
        report.runs.len(),
        report.wall,
        report.outputs["result"]
    );
    // sum(1..4) + sum of squares(5..8) = 10 + 174 = 184
    assert_eq!(report.outputs["result"], Value::Num(184.0));
}
