//! The paper's future-work step, implemented: generate real
//! message-passing programs from a scheduled design.
//!
//! Writes `target/generated/lu3.rs` (self-contained Rust, threads + mpsc)
//! and `target/generated/lu3.c` (MPI-style C) for the Figure 1 LU design,
//! then — if `rustc` is available — compiles and runs the Rust program and
//! checks its output against the in-process executor.
//!
//! Run with: `cargo run --example codegen_demo`

use banger::figures;
use banger::lu::{lu_inputs, solve_reference, test_system};
use banger_machine::{Machine, Topology};
use std::path::Path;
use std::process::Command;

fn main() {
    let machine = Machine::new(Topology::hypercube(2), figures::figure3_params());
    let mut project = figures::lu_project(3, machine);
    let schedule = project.schedule("MH").expect("schedules");
    let (a, b) = test_system(3);
    let inputs = lu_inputs(&a, &b);

    let rust_src = project.generate_rust(&schedule, &inputs).expect("rust");
    let c_src = project.generate_c(&schedule, &inputs).expect("c");

    let dir = Path::new("target/generated");
    std::fs::create_dir_all(dir).expect("mkdir");
    std::fs::write(dir.join("lu3.rs"), &rust_src).expect("write rs");
    std::fs::write(dir.join("lu3.c"), &c_src).expect("write c");
    println!(
        "wrote {} ({} lines) and {} ({} lines)",
        dir.join("lu3.rs").display(),
        rust_src.lines().count(),
        dir.join("lu3.c").display(),
        c_src.lines().count()
    );

    // Compile and run the generated Rust program.
    let bin = dir.join("lu3_bin");
    let status = Command::new("rustc")
        .args(["-O", "-o"])
        .arg(&bin)
        .arg(dir.join("lu3.rs"))
        .status();
    match status {
        Ok(s) if s.success() => {
            let out = Command::new(&bin).output().expect("generated binary runs");
            let stdout = String::from_utf8_lossy(&out.stdout);
            println!("\ngenerated program output:\n{stdout}");
            let want = solve_reference(&a, &b);
            println!("reference solution: {want:?}");
            assert!(
                stdout.contains("output x"),
                "generated program must print the x port"
            );
        }
        Ok(s) => eprintln!("rustc failed with {s}; sources were still generated"),
        Err(e) => eprintln!("rustc not available ({e}); sources were still generated"),
    }
}
