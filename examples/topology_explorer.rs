//! Explore how one design maps onto every Figure 2 topology: the
//! machine-independence principle made visible. Prints the topology table,
//! a per-topology scheduling comparison, and the winner's Gantt chart.
//!
//! Run with: `cargo run --example topology_explorer`

use banger::figures;
use banger::gantt::{self, GanttOptions};
use banger::project::short_name;
use banger_machine::{Machine, RoutingTable, Topology};
use banger_sched::bounds;
use banger_taskgraph::generators;

fn main() {
    // Figure 2: what the environment supports.
    println!("{}", figures::figure2());

    // One design, many machines. The FFT butterfly is communication-heavy
    // (every rank talks to a partner a power-of-two away), so the network
    // shape shows through — hypercubes embed it perfectly, rings do not.
    let g = generators::fft(16, 4.0, 8.0);
    println!(
        "design: {} ({} tasks, {} arcs, avg parallelism {:.2})\n",
        g.name(),
        g.task_count(),
        g.edge_count(),
        banger_taskgraph::analysis::average_parallelism(&g)
    );

    let topologies = [
        Topology::hypercube(3),
        Topology::mesh(2, 4),
        Topology::tree(2, 2),
        Topology::star(8),
        Topology::fully_connected(8),
        Topology::ring(8),
    ];

    println!(
        "{:<16} {:>9} {:>10} {:>9} {:>8} {:>12}",
        "topology", "diameter", "makespan", "speedup", "MS/LB", "sim-ratio"
    );
    let mut best: Option<(Machine, banger_sched::Schedule)> = None;
    let params = banger_machine::MachineParams {
        msg_startup: 0.25,
        transmission_rate: 2.0,
        process_startup: 0.1,
        ..banger_machine::MachineParams::default()
    };
    for topo in topologies {
        let m = Machine::new(topo, params);
        let s = banger_sched::mh::mh(&g, &m);
        s.validate(&g, &m).expect("valid");
        let lb = bounds::lower_bound(&g, &m);
        let sim =
            banger_sim::simulate(&g, &m, &s, banger_sim::SimOptions::default()).expect("simulates");
        println!(
            "{:<16} {:>9} {:>10.2} {:>8.2}x {:>8.3} {:>12.3}",
            m.topology().name(),
            RoutingTable::build(m.topology()).diameter().unwrap(),
            s.makespan(),
            s.speedup(&g, &m),
            s.makespan() / lb,
            sim.compare()
        );
        if best
            .as_ref()
            .map(|(_, b)| s.makespan() < b.makespan())
            .unwrap_or(true)
        {
            best = Some((m, s));
        }
    }

    let (m, s) = best.unwrap();
    println!("\nbest machine: {} — Gantt chart:\n", m.topology().name());
    println!(
        "{}",
        gantt::render(
            &s,
            m.processors(),
            |t| short_name(&g.task(t).name),
            GanttOptions::default()
        )
    );
}
