//! Copy-on-write aliasing property suite.
//!
//! `Value::Array` shares its buffer behind an `Arc` and copies only on
//! write (`Arc::make_mut`). These properties pin the contract down:
//!
//! 1. **Aliasing is invisible.** Binding *one* shared array to several
//!    task inputs must be observationally identical to binding
//!    independent deep copies — same outputs, same prints, same `ops`
//!    (the scheduler's measured weight; a CoW copy must not tick), same
//!    errors, and `StepLimit` at exactly the same budget.
//! 2. **Both engines agree under aliasing.** The compiled VM and the
//!    tree-walking reference interpreter stay byte-identical when their
//!    inputs alias.
//! 3. **The caller's buffer survives.** Whatever a task does to its
//!    bindings, the values the caller passed in still hold their
//!    original contents afterwards.
//!
//! Programs are generated to *write* arrays aggressively (index
//! assignment is weighted up versus `tests/prop_vm.rs`) so the
//! `make_mut` unshare path is exercised constantly, and to fail in all
//! the usual ways (type errors, out-of-range indices, step limits) so
//! error identity is covered too. Comparison goes through `Debug`
//! formatting so `NaN` results compare equal.

use banger_calc::ast::{BinOp, Expr, Program, Stmt};
use banger_calc::error::Pos;
use banger_calc::{compile, interp, vm, InterpConfig, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

const SCALARS: [&str; 2] = ["a", "b"];
/// Every array variable is an *input*, so aliasing applies to all of them.
const ARRAYS: [&str; 3] = ["v", "w", "z"];

/// Step budgets to differentiate at; the small ones make `StepLimit`
/// fire mid-write, where a divergence in unshare behaviour would show.
const BUDGETS: [u64; 5] = [5, 19, 101, 997, 50_000];

fn pos() -> Pos {
    Pos { line: 1, col: 1 }
}

fn assign(var: &str, expr: Expr) -> Stmt {
    Stmt::Assign {
        var: var.to_string(),
        expr,
        pos: pos(),
    }
}

/// Expressions over the seeded scalars, the aliased arrays, indexing, a
/// couple of array builtins, and error leaves.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        5 => (0i32..16).prop_map(|v| Expr::Num(v as f64)),
        4 => (0usize..SCALARS.len()).prop_map(|i| Expr::Var(SCALARS[i].to_string())),
        // Arrays as bare values: array-to-array assignment (`w := v`) is
        // where sharing propagates.
        3 => (0usize..ARRAYS.len()).prop_map(|i| Expr::Var(ARRAYS[i].to_string())),
        1 => Just(Expr::Var("q".to_string())), // never assigned: Undefined parity
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            6 => (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| {
                Expr::Bin(op, Box::new(l), Box::new(r))
            }),
            // Indexing with arbitrary (possibly out-of-range) indices.
            4 => ((0usize..ARRAYS.len()), inner.clone()).prop_map(|(i, e)| {
                Expr::Index(ARRAYS[i].to_string(), Box::new(e))
            }),
            2 => (0usize..ARRAYS.len())
                .prop_map(|i| Expr::Call("sum".to_string(), vec![Expr::Var(ARRAYS[i].into())])),
            1 => (0usize..ARRAYS.len())
                .prop_map(|i| Expr::Call("len".to_string(), vec![Expr::Var(ARRAYS[i].into())])),
            1 => inner.prop_map(|e| Expr::Call("abs".to_string(), vec![e])),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Lt),
        Just(BinOp::Gt),
    ]
}

/// Statements, with array writes and array-to-array copies weighted up:
/// the whole point is to hit the `make_mut` unshare path often.
fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let index_assign = ((0usize..ARRAYS.len()), arb_expr(), arb_expr()).prop_map(|(i, idx, e)| {
        Stmt::AssignIndex {
            var: ARRAYS[i].to_string(),
            index: idx,
            expr: e,
            pos: pos(),
        }
    });
    let array_copy = ((0usize..ARRAYS.len()), (0usize..ARRAYS.len()))
        .prop_map(|(dst, src)| assign(ARRAYS[dst], Expr::Var(ARRAYS[src].to_string())));
    let scalar_assign =
        ((0usize..SCALARS.len()), arb_expr()).prop_map(|(i, e)| assign(SCALARS[i], e));
    let print = arb_expr().prop_map(|e| Stmt::Print {
        expr: e,
        pos: pos(),
    });
    let ifstmt = (arb_expr(), arb_expr(), arb_expr()).prop_map(|(c, e1, e2)| Stmt::If {
        cond: c,
        then_body: vec![assign("a", e1)],
        else_body: vec![assign("b", e2)],
        pos: pos(),
    });
    let forstmt =
        ((0usize..ARRAYS.len()), (1i32..5), arb_expr()).prop_map(|(arr, n, e)| Stmt::For {
            var: "i".to_string(),
            from: Expr::Num(1.0),
            to: Expr::Num(n as f64),
            body: vec![Stmt::AssignIndex {
                var: ARRAYS[arr].to_string(),
                index: Expr::Var("i".to_string()),
                expr: e,
                pos: pos(),
            }],
            pos: pos(),
        });
    prop_oneof![
        5 => index_assign,
        3 => array_copy,
        3 => scalar_assign,
        2 => forstmt,
        1 => print,
        1 => ifstmt,
    ]
}

/// A program whose inputs are all three array variables plus a scalar;
/// everything is also an output so every mutation is observable.
fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_stmt(), 1..8).prop_map(|body| {
        let mut full: Vec<Stmt> = vec![assign("b", Expr::Num(2.0))];
        full.extend(body);
        Program {
            name: "Cow".to_string(),
            inputs: std::iter::once("a")
                .chain(ARRAYS.iter().copied())
                .map(str::to_string)
                .collect(),
            outputs: SCALARS
                .iter()
                .chain(ARRAYS.iter())
                .map(|v| v.to_string())
                .collect(),
            locals: vec![],
            body: full,
            decl_pos: Default::default(),
        }
    })
}

/// A deep, structurally independent copy of a value (what the pre-CoW
/// runtime passed around implicitly).
fn deep(v: &Value) -> Value {
    match v {
        Value::Num(n) => Value::Num(*n),
        Value::Array(a) => Value::array(a.as_ref().clone()),
    }
}

/// Inputs where all three arrays alias ONE shared buffer.
fn aliased_inputs(buf: &[f64]) -> (Value, BTreeMap<String, Value>) {
    let shared = Value::array(buf.to_vec());
    let mut m = BTreeMap::new();
    m.insert("a".to_string(), Value::Num(3.0));
    for arr in ARRAYS {
        m.insert(arr.to_string(), shared.clone());
    }
    (shared, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Aliased inputs must be observationally identical to deep copies —
    /// per engine, at every budget, including ops counts and StepLimit.
    #[test]
    fn aliasing_is_invisible(
        p in arb_program(),
        buf in prop::collection::vec(-8.0f64..8.0, 0..6),
    ) {
        let compiled = compile(&p);
        let mut machine = vm::Vm::new();
        let (_, shared) = aliased_inputs(&buf);
        let copied: BTreeMap<String, Value> =
            shared.iter().map(|(k, v)| (k.clone(), deep(v))).collect();
        for max_steps in BUDGETS {
            let cfg = InterpConfig { max_steps, ..Default::default() };
            let vm_shared = machine.run(&compiled, &shared, cfg);
            let vm_copied = machine.run(&compiled, &copied, cfg);
            prop_assert_eq!(
                format!("{vm_shared:?}"),
                format!("{vm_copied:?}"),
                "VM: aliased vs deep-copied diverged at max_steps={} on:\n{}",
                max_steps,
                banger_calc::pretty::print_program(&p)
            );
            let tw_shared = interp::run_with(&p, &shared, cfg);
            let tw_copied = interp::run_with(&p, &copied, cfg);
            prop_assert_eq!(
                format!("{tw_shared:?}"),
                format!("{tw_copied:?}"),
                "tree-walker: aliased vs deep-copied diverged at max_steps={} on:\n{}",
                max_steps,
                banger_calc::pretty::print_program(&p)
            );
        }
    }

    /// The VM and the reference tree-walker stay byte-identical when
    /// their inputs alias (the cross-engine leg of the CoW contract).
    #[test]
    fn engines_agree_under_aliasing(
        p in arb_program(),
        buf in prop::collection::vec(-8.0f64..8.0, 0..6),
    ) {
        let compiled = compile(&p);
        let mut machine = vm::Vm::new();
        let (_, shared) = aliased_inputs(&buf);
        for max_steps in BUDGETS {
            let cfg = InterpConfig { max_steps, ..Default::default() };
            let want = interp::run_with(&p, &shared, cfg);
            let got = machine.run(&compiled, &shared, cfg);
            prop_assert_eq!(
                format!("{got:?}"),
                format!("{want:?}"),
                "engines diverged at max_steps={} on:\n{}",
                max_steps,
                banger_calc::pretty::print_program(&p)
            );
        }
    }

    /// Whatever the task body does, the caller's buffer is never
    /// mutated: writes through one binding are invisible through the
    /// original value.
    #[test]
    fn caller_buffer_is_never_mutated(
        p in arb_program(),
        buf in prop::collection::vec(-8.0f64..8.0, 0..6),
    ) {
        let compiled = compile(&p);
        let mut machine = vm::Vm::new();
        let (original, shared) = aliased_inputs(&buf);
        let cfg = InterpConfig::default();
        let _ = machine.run(&compiled, &shared, cfg);
        let _ = interp::run_with(&p, &shared, cfg);
        prop_assert_eq!(
            original.as_array("original").unwrap(),
            &buf[..],
            "a task run mutated its caller's buffer on:\n{}",
            banger_calc::pretty::print_program(&p)
        );
        // And the map bindings themselves still alias the original.
        for arr in ARRAYS {
            prop_assert!(
                shared[arr].shares_buffer(&original),
                "input map binding {} was disturbed", arr
            );
        }
    }
}

/// Deterministic spot-check: a program that writes one of three aliased
/// arrays produces the same ops as with deep copies, and unshared
/// bindings keep sharing right through an engine run (reads never copy).
#[test]
fn read_only_bindings_stay_shared_and_ops_do_not_tick_on_copy() {
    let src = "task T in a, v, w, z out b, rv, rw, rz begin \
               b := sum(w) + z[1] \
               v[1] := a \
               rv := v \
               rw := w \
               rz := z \
               end";
    let p = banger_calc::parser::parse_program(src).unwrap();
    let c = compile(&p);
    let mut machine = vm::Vm::new();
    let (original, shared) = aliased_inputs(&[1.0, 2.0, 3.0]);
    let copied: BTreeMap<String, Value> =
        shared.iter().map(|(k, v)| (k.clone(), deep(v))).collect();
    let cfg = InterpConfig::default();
    let with_alias = machine.run(&c, &shared, cfg).unwrap();
    let with_copies = machine.run(&c, &copied, cfg).unwrap();
    assert_eq!(
        with_alias.ops, with_copies.ops,
        "the CoW copy for v[1] := a must not tick the op counter"
    );
    assert_eq!(with_alias, with_copies);
    // Only `v` was written; `w` and `z` came back still sharing the
    // caller's buffer — the read-only fan-out was zero-copy end to end.
    assert!(with_alias.outputs["rw"].shares_buffer(&original));
    assert!(with_alias.outputs["rz"].shares_buffer(&original));
    assert!(!with_alias.outputs["rv"].shares_buffer(&original));
    assert_eq!(original.as_array("o").unwrap(), &[1.0, 2.0, 3.0]);
    assert_eq!(
        with_alias.outputs["rv"].as_array("rv").unwrap(),
        &[3.0, 2.0, 3.0]
    );
}

// ---------------------------------------------------------------------------
// Executor differential: work-stealing dispatch vs inline execution.
// ---------------------------------------------------------------------------
//
// The dispatch layer must be invisible to the CoW machinery. A design
// run on the work-stealing pool — at any inline threshold, including
// `0.0` which forces every task through the stealable deques — or fired
// repeatedly through a persistent `Session` produces byte-identical
// outputs, the same per-task measured ops, and the same total CoW
// copy/byte counters as the same design run sequentially on the
// caller's thread. The generated designs push arrays through index
// writes so every run exercises the unshare path.

use banger_calc::ProgramLibrary;
use banger_exec::{execute, ExecMode, ExecOptions, ExecReport, Session, DEFAULT_INLINE_BELOW};
use banger_taskgraph::hierarchy::{Flattened, HierGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random layered design with aggressive array traffic (same shape as
/// `tests/prop_trace.rs`): sources fill an array and write one slot,
/// interior tasks read aliased elements of every input.
fn build_design(seed: u64, layers: usize, width: usize) -> (Flattened, ProgramLibrary) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = HierGraph::new("cowdiff");
    let mut lib = ProgramLibrary::new();
    let mut prev: Vec<(banger_taskgraph::HierNodeId, String)> = Vec::new();

    for l in 0..layers {
        let mut cur = Vec::with_capacity(width);
        for w in 0..width {
            let out_var = format!("o{l}_{w}");
            let node = h.add_task_with_program(format!("t{l}_{w}"), 1.0, format!("P{l}_{w}"));
            let mut ins: Vec<String> = Vec::new();
            if l > 0 {
                for (pn, pv) in &prev {
                    if rng.gen_bool(0.5) || (ins.is_empty() && *pn == prev.last().unwrap().0) {
                        h.add_arc(*pn, node, pv.clone(), 1.0).unwrap();
                        ins.push(pv.clone());
                    }
                }
            }
            let stmt = if ins.is_empty() {
                format!("{out_var} := fill(8, {}) {out_var}[1] := 2", l + w + 1)
            } else {
                format!("{out_var} := fill(4, 1 + {}[1])", ins.join("[1] + "))
            };
            lib.add_source(&format!(
                "task P{l}_{w} {} out {out_var} begin {stmt} end",
                if ins.is_empty() {
                    String::new()
                } else {
                    format!("in {}", ins.join(", "))
                },
            ))
            .unwrap();
            cur.push((node, out_var));
        }
        prev = cur;
    }

    let gather = h.add_task_with_program("gather", 1.0, "Gather");
    let sink = h.add_storage("result", 1.0);
    h.add_flow(gather, sink).unwrap();
    let mut ins = Vec::new();
    for (pn, pv) in &prev {
        h.add_arc(*pn, gather, pv.clone(), 1.0).unwrap();
        ins.push(pv.clone());
    }
    lib.add_source(&format!(
        "task Gather in {} out result begin result := {} end",
        ins.join(", "),
        ins.join("[1] + ") + "[1]"
    ))
    .unwrap();

    (h.flatten().unwrap(), lib)
}

/// Traced execution so the report carries the CoW copy/byte counters.
fn run_exec(
    design: &Flattened,
    lib: &ProgramLibrary,
    workers: usize,
    inline_below: f64,
) -> ExecReport {
    execute(
        design,
        lib,
        &BTreeMap::new(),
        &ExecOptions {
            mode: ExecMode::Greedy { workers },
            inline_below,
            trace: true,
            ..ExecOptions::default()
        },
    )
    .expect("run succeeds")
}

/// Byte-identical check between a work-stealing report and the inline
/// baseline: outputs, prints, per-task ops, and total CoW counters.
fn assert_matches_baseline(
    label: &str,
    base: &ExecReport,
    other: &ExecReport,
    n: usize,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        format!("{:?}", base.outputs),
        format!("{:?}", other.outputs),
        "{}: outputs diverge",
        label
    );
    prop_assert_eq!(&base.prints, &other.prints, "{}: prints diverge", label);
    prop_assert_eq!(
        base.measured_weights(n),
        other.measured_weights(n),
        "{}: per-task ops diverge",
        label
    );
    let bs = base.trace.as_ref().expect("traced baseline").summary();
    let os = other.trace.as_ref().expect("traced run").summary();
    prop_assert_eq!(os.tasks, bs.tasks, "{}: task counts diverge", label);
    prop_assert_eq!(os.ops, bs.ops, "{}: total ops diverge", label);
    prop_assert_eq!(
        os.cow_copies,
        bs.cow_copies,
        "{}: CoW copy counts diverge",
        label
    );
    prop_assert_eq!(os.cow_bytes, bs.cow_bytes, "{}: CoW bytes diverge", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn work_stealing_dispatch_is_byte_identical_to_inline(
        seed in 0u64..300,
        layers in 2usize..4,
        width in 1usize..4,
        workers in 2usize..5,
    ) {
        let (design, lib) = build_design(seed, layers, width);
        let n = design.graph.task_count();
        let base = run_exec(&design, &lib, 1, DEFAULT_INLINE_BELOW);
        for inline_below in [DEFAULT_INLINE_BELOW, 0.0] {
            let ws = run_exec(&design, &lib, workers, inline_below);
            assert_matches_baseline(
                &format!("workers={workers} inline_below={inline_below}"),
                &base,
                &ws,
                n,
            )?;
        }
    }

    #[test]
    fn session_firings_are_byte_identical_to_inline(
        seed in 0u64..300,
        layers in 2usize..4,
        width in 1usize..4,
        workers in 2usize..5,
    ) {
        // Reused worker threads, deques, and slab store across firings
        // must not change what the CoW layer observes.
        let (design, lib) = build_design(seed, layers, width);
        let n = design.graph.task_count();
        let base = run_exec(&design, &lib, 1, DEFAULT_INLINE_BELOW);
        for inline_below in [DEFAULT_INLINE_BELOW, 0.0] {
            let mut session = Session::new(
                &design,
                &lib,
                &ExecOptions {
                    mode: ExecMode::Greedy { workers },
                    inline_below,
                    trace: true,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            for firing in 0..3 {
                let report = session.run(&BTreeMap::new()).unwrap();
                assert_matches_baseline(
                    &format!("firing {firing} workers={workers} inline_below={inline_below}"),
                    &base,
                    &report,
                    n,
                )?;
            }
        }
    }
}
