//! Differential pinning of the scheduler scale rework.
//!
//! The heap-based ready queues and the ETF/DLS earliest-start cache must
//! produce **bit-identical** schedules — same commit order, same
//! placements, same start/finish times — to the retained naive
//! implementations in `banger_sched::reference` (the pre-rework linear
//! scans and full pair rescans). `Schedule`'s `PartialEq` compares the
//! heuristic name, the task count and the ordered placement list with
//! exact float equality, so equality here *is* the bit-identical
//! contract; per-run probe stats are deliberately excluded from it and
//! asserted separately (the asymptotic win must show up in the counters,
//! not just the wall clock).

use banger_machine::{Machine, MachineParams, SwitchingMode, Topology};
use banger_sched::reference;
use banger_taskgraph::analysis::GraphAnalysis;
use banger_taskgraph::{generators, TaskGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every heuristic under differential test (serial is shared code, but
/// keeping it here keeps the dispatchers honest).
const NAMES: [&str; 8] = ["serial", "naive", "HLFET", "MCP", "ETF", "DLS", "MH", "DSH"];

fn assert_identical(g: &TaskGraph, m: &Machine, names: &[&str]) {
    let a = GraphAnalysis::analyze(g);
    for name in names {
        let opt = banger_sched::run_heuristic_with(name, g, m, &a)
            .unwrap_or_else(|| panic!("{name} unknown to production dispatcher"));
        let naive = reference::run_reference_with(name, g, m, &a)
            .unwrap_or_else(|| panic!("{name} unknown to reference dispatcher"));
        assert_eq!(
            opt,
            naive,
            "{name} diverged from reference on {} / {}",
            g.name(),
            m.topology().name()
        );
    }
}

fn random_graph() -> impl Strategy<Value = TaskGraph> {
    (any::<u64>(), 1usize..5, 1usize..6, 0.1f64..0.8).prop_map(
        |(seed, layers, width, edge_prob)| {
            let mut rng = StdRng::seed_from_u64(seed);
            generators::random_layered(
                &mut rng,
                &generators::RandomSpec {
                    layers,
                    width,
                    edge_prob,
                    weight: (1.0, 30.0),
                    volume: (0.0, 20.0),
                },
            )
        },
    )
}

fn random_machine() -> impl Strategy<Value = Machine> {
    let topo = prop_oneof![
        (0u32..3).prop_map(Topology::hypercube),
        (1usize..3, 1usize..4).prop_map(|(r, c)| Topology::mesh(r, c)),
        (2usize..6).prop_map(Topology::star),
        (2usize..6).prop_map(Topology::ring),
        (1usize..6).prop_map(Topology::fully_connected),
    ];
    (
        topo,
        0.5f64..4.0,     // processor speed
        0.0f64..2.0,     // process startup
        0.0f64..3.0,     // msg startup
        0.5f64..8.0,     // transmission rate
        prop::bool::ANY, // cut-through?
    )
        .prop_map(|(t, speed, pstart, mstart, rate, cut)| {
            Machine::new(
                t,
                MachineParams {
                    processor_speed: speed,
                    process_startup: pstart,
                    msg_startup: mstart,
                    transmission_rate: rate,
                    switching: if cut {
                        SwitchingMode::CutThrough { hop_latency: 0.2 }
                    } else {
                        SwitchingMode::StoreAndForward
                    },
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The heart of the contract: on arbitrary graphs and machines, every
    /// optimised heuristic equals its retained reference, placement for
    /// placement.
    #[test]
    fn optimised_matches_reference(
        g in random_graph(),
        m in random_machine(),
    ) {
        assert_identical(&g, &m, &NAMES);
    }

    /// Priority ties are where heap order could silently diverge from the
    /// linear scan (same level, different pop order). Uniform weights and
    /// volumes make almost every priority a tie.
    #[test]
    fn tie_heavy_graphs_match(
        seed in any::<u64>(),
        layers in 1usize..6,
        width in 2usize..8,
        procs in 1usize..5,
    ) {
        let g = generators::layered_random(seed, layers, width, 2, (4.0, 4.0), (3.0, 3.0));
        let m = Machine::new(Topology::fully_connected(procs), MachineParams::default());
        assert_identical(&g, &m, &NAMES);
    }
}

/// Sampled sizes of the new scale generators through every heuristic.
/// Sizes are chosen so the quadratic references stay affordable in debug
/// builds; CI additionally runs this whole suite in release.
#[test]
fn scale_generators_match_reference() {
    let m4 = Machine::new(
        Topology::hypercube(2),
        MachineParams {
            msg_startup: 0.5,
            ..MachineParams::default()
        },
    );
    let m3 = Machine::new(Topology::star(3), MachineParams::default());

    let layered = generators::layered_random(11, 40, 25, 3, (1.0, 20.0), (0.5, 10.0));
    assert_eq!(layered.task_count(), 1000);
    assert_identical(&layered, &m4, &NAMES);
    assert_identical(&layered, &m3, &NAMES);

    let lu = generators::tiled_lu(10, 2.0, 1.0);
    assert_identical(&lu, &m4, &NAMES);

    let st = generators::stencil(25, 20, 3.0, 1.0);
    assert_identical(&st, &m4, &NAMES);
}

/// A wide, shallow graph keeps the ready set large for the whole run —
/// the worst case for the legacy scans and the best case for the rework.
/// The selection heuristics (HLFET/MCP) must probe *exactly* as often as
/// the reference (only selection time changed), while the pair-scan
/// heuristics (ETF/DLS) must show the cache's asymptotic probe reduction.
#[test]
fn probe_counters_prove_the_asymptotic_win() {
    let g = generators::stencil(30, 40, 2.0, 1.0);
    let m = Machine::new(Topology::fully_connected(4), MachineParams::default());
    let a = GraphAnalysis::analyze(&g);

    for name in ["HLFET", "MCP", "naive", "MH"] {
        let opt = banger_sched::run_heuristic_with(name, &g, &m, &a).unwrap();
        let naive = reference::run_reference_with(name, &g, &m, &a).unwrap();
        assert_eq!(opt, naive, "{name}");
        assert_eq!(
            opt.stats(),
            naive.stats(),
            "{name}: selection-only rework must not change probe counts"
        );
    }

    for name in ["ETF", "DLS"] {
        let opt = banger_sched::run_heuristic_with(name, &g, &m, &a).unwrap();
        let naive = reference::run_reference_with(name, &g, &m, &a).unwrap();
        assert_eq!(opt, naive, "{name}");
        let (o, r) = (opt.stats(), naive.stats());
        assert!(
            o.arrival_probes * 5 < r.arrival_probes,
            "{name}: cache should cut arrival probes ≥5x: {} vs {}",
            o.arrival_probes,
            r.arrival_probes
        );
        assert!(
            o.slot_searches < r.slot_searches,
            "{name}: stale-only recomputation should cut slot searches: {} vs {}",
            o.slot_searches,
            r.slot_searches
        );
    }
}

/// Stats ride the schedule, per run — two concurrent sweeps must each see
/// exactly their own counters (the old process-global atomics interleaved
/// them).
#[test]
fn probe_stats_are_per_run() {
    let g = generators::gauss_elimination(8, 2.0, 1.0);
    let m = Machine::new(Topology::hypercube(2), MachineParams::default());
    let solo = banger_sched::mh::mh(&g, &m).stats();
    assert!(solo.arrival_probes > 0 && solo.slot_searches > 0);

    std::env::set_var("BANGER_SWEEP_WORKERS", "4");
    let machines: Vec<Machine> = (0..8)
        .map(|_| Machine::new(Topology::hypercube(2), MachineParams::default()))
        .collect();
    let (schedules, stats) =
        banger_sched::sweep::sweep_machines_stats("MH", &g, &machines).unwrap();
    std::env::remove_var("BANGER_SWEEP_WORKERS");

    assert_eq!(stats.planned_workers, 4);
    for s in &schedules {
        assert_eq!(
            s.stats(),
            solo,
            "concurrent identical runs must report identical per-run stats"
        );
    }
}
