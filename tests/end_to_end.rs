//! Workspace integration tests: the complete Banger workflow across all
//! crates — design → programs → machine → schedule → simulate → execute →
//! verify.

use banger::figures;
use banger::lu::{lu_inputs, lu_program_library, solve_reference, test_system};
use banger::project::Project;
use banger_calc::Value;
use banger_machine::{Machine, MachineParams, Topology};
use banger_taskgraph::generators;
use std::collections::BTreeMap;

#[test]
fn lu_workflow_all_sizes_and_machines() {
    for n in 2..=6 {
        for topo in [
            Topology::single(),
            Topology::hypercube(1),
            Topology::hypercube(2),
            Topology::hypercube(3),
        ] {
            let m = Machine::new(topo, figures::figure3_params());
            let mut p = figures::lu_project(n, m.clone());
            // Every heuristic schedules validly.
            for h in banger_sched::HEURISTIC_NAMES.iter().chain(["DSH"].iter()) {
                let s = p.schedule(h).unwrap();
                let g = p.flatten().unwrap().graph.clone();
                s.validate(&g, &m)
                    .unwrap_or_else(|e| panic!("n={n} {h} on {}: {e}", m.topology().name()));
                // Simulation replays it.
                let sim = p.simulate(&s).unwrap();
                assert!(sim.compare() >= 0.9, "n={n} {h}: ratio {}", sim.compare());
            }
            // Execution solves the system.
            let (a, b) = test_system(n);
            let report = p.run(&lu_inputs(&a, &b)).unwrap();
            let got = report.outputs["x"].as_array("x").unwrap().to_vec();
            let want = solve_reference(&a, &b);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9, "n={n}");
            }
        }
    }
}

#[test]
fn pinned_execution_matches_greedy_for_every_heuristic() {
    let m = Machine::new(Topology::hypercube(2), figures::figure3_params());
    let mut p = figures::lu_project(4, m);
    let (a, b) = test_system(4);
    let baseline = p.run(&lu_inputs(&a, &b)).unwrap().outputs;
    for h in ["HLFET", "ETF", "MH", "DSH"] {
        let s = p.schedule(h).unwrap();
        let pinned = p.run_scheduled(&s, &lu_inputs(&a, &b)).unwrap();
        assert_eq!(pinned.outputs, baseline, "{h}");
    }
}

#[test]
fn measured_weights_feed_back_into_scheduling() {
    // The instant-feedback loop: run, measure real op counts, re-weight
    // the flat graph, re-schedule. The re-weighted schedule must still be
    // valid and the predicted makespan must change.
    let m = Machine::new(Topology::hypercube(2), figures::figure3_params());
    let mut p = figures::lu_project(4, m.clone());
    let s_before = p.schedule("MH").unwrap();
    let (a, b) = test_system(4);
    let report = p.run(&lu_inputs(&a, &b)).unwrap();
    let mut g = p.flatten().unwrap().graph.clone();
    let weights = report.measured_weights(g.task_count());
    let ids: Vec<_> = g.task_ids().collect();
    for t in ids {
        g.task_mut(t).weight = weights[t.index()];
    }
    let s_after = banger_sched::mh::mh(&g, &m);
    s_after.validate(&g, &m).unwrap();
    assert_ne!(
        s_before.makespan(),
        s_after.makespan(),
        "measured weights should differ from nominal ones"
    );
}

#[test]
fn calibration_via_static_estimates() {
    let m = Machine::new(Topology::hypercube(2), figures::figure3_params());
    let mut p = figures::lu_project(3, m.clone());
    let updated = p.calibrate_from_programs().unwrap();
    assert_eq!(updated, 11, "3x3 design has 11 leaf tasks");
    let s = p.schedule("MH").unwrap();
    let g = p.flatten().unwrap().graph.clone();
    s.validate(&g, &m).unwrap();
    // And the calibrated project still executes correctly.
    let (a, b) = test_system(3);
    let report = p.run(&lu_inputs(&a, &b)).unwrap();
    let want = solve_reference(&a, &b);
    let got = report.outputs["x"].as_array("x").unwrap();
    for (g_, w) in got.iter().zip(&want) {
        assert!((g_ - w).abs() < 1e-9);
    }
}

#[test]
fn panel_to_execution_round_trip() {
    // Record a task on the calculator panel, drop it into a design, run
    // the design — the full non-programmer story.
    let mut panel = banger_calc::Panel::new();
    panel.begin_task("Hypot");
    panel.declare_in("p", Value::Num(3.0)).unwrap();
    panel.declare_in("q", Value::Num(4.0)).unwrap();
    panel.declare_out("h").unwrap();
    panel.record_line("h := sqrt(p ^ 2 + q ^ 2)").unwrap();
    let (prog, _) = panel.finish_task().unwrap();

    let mut design = banger_taskgraph::HierGraph::new("hypot");
    let sp = design.add_storage("p", 1.0);
    let sq = design.add_storage("q", 1.0);
    let t = design.add_task_with_program("hypot", 5.0, "Hypot");
    let sh = design.add_storage("h", 1.0);
    design.add_flow(sp, t).unwrap();
    design.add_flow(sq, t).unwrap();
    design.add_flow(t, sh).unwrap();

    let mut project = Project::new("hypot", design);
    project.library_mut().add(prog);
    project.set_machine(Machine::new(Topology::single(), MachineParams::default()));

    let inputs: BTreeMap<String, Value> = [
        ("p".to_string(), Value::Num(3.0)),
        ("q".to_string(), Value::Num(4.0)),
    ]
    .into_iter()
    .collect();
    let report = project.run(&inputs).unwrap();
    assert_eq!(report.outputs["h"], Value::Num(5.0));
}

#[test]
fn grain_packing_pipeline() {
    // Pack a fine-grain graph, schedule the packed version, verify it
    // never loses to the raw schedule when startup costs are punishing.
    let g = generators::lattice(5, 5, 1.0, 5.0);
    let m = Machine::new(
        Topology::hypercube(2),
        MachineParams {
            process_startup: 3.0,
            ..MachineParams::default()
        },
    );
    let packing = banger_sched::grain::pack(&g).unwrap();
    assert!(packing.packed.task_count() < g.task_count());
    let raw = banger_sched::list::etf(&g, &m);
    let packed = banger_sched::list::etf(&packing.packed, &m);
    raw.validate(&g, &m).unwrap();
    packed.validate(&packing.packed, &m).unwrap();
    assert!(
        packed.makespan() <= raw.makespan(),
        "packed {} vs raw {}",
        packed.makespan(),
        raw.makespan()
    );
}

#[test]
fn textfmt_round_trip_through_scheduling() {
    // Save a design to the text format, load it back, schedule both —
    // identical schedules.
    let g = generators::gauss_elimination(6, 2.0, 1.5);
    let text = banger_taskgraph::textfmt::to_text(&g);
    let g2 = banger_taskgraph::textfmt::from_text(&text).unwrap();
    assert_eq!(g, g2);
    let m = Machine::new(Topology::hypercube(2), MachineParams::default());
    assert_eq!(banger_sched::mh::mh(&g, &m), banger_sched::mh::mh(&g2, &m));
}

#[test]
fn heterogeneous_machine_end_to_end() {
    // Processor 0 is 4x faster: schedules should prefer it, and the
    // validator must accept the heterogeneous durations.
    let mut m = Machine::new(Topology::fully_connected(4), MachineParams::default());
    m.set_relative_speed(banger_machine::ProcId(0), 4.0)
        .unwrap();
    let g = generators::gauss_elimination(6, 2.0, 0.5);
    for h in ["ETF", "DLS", "MH", "DSH"] {
        let s = banger_sched::run_heuristic(h, &g, &m).unwrap();
        s.validate(&g, &m).unwrap_or_else(|e| panic!("{h}: {e}"));
        // Busy time understates the fast processor (it finishes tasks in a
        // quarter of the time); compare executed *weight* = busy x speed.
        let fast_work = s.busy_time(banger_machine::ProcId(0)) * 4.0;
        let slow_work = s.busy_time(banger_machine::ProcId(3));
        assert!(
            fast_work >= slow_work,
            "{h}: fast processor should execute at least as much weight ({fast_work} vs {slow_work})"
        );
    }
}

#[test]
fn figures_are_stable() {
    // The figure builders are deterministic (no ambient randomness).
    assert_eq!(figures::figure1(), figures::figure1());
    assert_eq!(figures::figure2(), figures::figure2());
    assert_eq!(figures::figure3(), figures::figure3());
    assert_eq!(figures::figure4(), figures::figure4());
}

#[test]
fn program_library_and_design_agree_for_all_lu_sizes() {
    for n in 2..=9 {
        let lib = lu_program_library(n);
        let f = generators::lu_hierarchical(n).flatten().unwrap();
        for (_, task) in f.graph.tasks() {
            let pname = task.program.as_deref().unwrap();
            let prog = lib
                .get(pname)
                .unwrap_or_else(|| panic!("n={n}: missing {pname}"));
            // Every incoming arc label the task consumes is declared.
            for &e in f.graph.in_edges(f.graph.find_task(&task.name).unwrap()) {
                let label = &f.graph.edge(e).label;
                assert!(
                    prog.inputs.iter().any(|v| v == label),
                    "n={n}: task {} does not declare input {label}",
                    task.name
                );
            }
        }
    }
}
