//! Differential property tests for the graph-rewrite optimizer.
//!
//! The soundness contract (crates/opt): dead-arc elimination and task
//! fusion preserve Outcomes *exactly* — output values, print output and
//! total interpreter operation counts — on both execution engines. Map
//! expansion preserves values bit-for-bit. These tests check the
//! contract against randomly generated flattened designs seeded with
//! dead arcs, shadowed duplicates and unused declarations.

use std::collections::BTreeMap;

use banger_calc::{InterpConfig, ProgramLibrary, Value};
use banger_exec::{execute, ExecOptions, ExecReport};
use banger_opt::{eliminate_dead, fuse, fuse_with};
use banger_taskgraph::hierarchy::{ExternalPort, Flattened};
use banger_taskgraph::{TaskGraph, TaskId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random layered flat design: every task computes a scalar from a mix
/// of external inputs and upstream outputs, with occasional prints,
/// loops, dead arcs, shadowed duplicate arcs and unused declarations.
fn random_flat(seed: u64) -> (Flattened, ProgramLibrary, BTreeMap<String, Value>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let layers = rng.gen_range(1usize..=4);
    let width = rng.gen_range(1usize..=4);

    let mut g = TaskGraph::new("rand");
    let mut lib = ProgramLibrary::new();
    let mut externals: BTreeMap<String, Value> = BTreeMap::new();
    let mut ext_readers: BTreeMap<String, Vec<TaskId>> = BTreeMap::new();
    // (producer, var) pairs available to later layers.
    let mut produced: Vec<(TaskId, String)> = Vec::new();
    let mut consumed: Vec<String> = Vec::new();
    let mut idx = 0usize;

    for _ in 0..layers {
        let prev = produced.clone();
        for _ in 0..width {
            let out_var = format!("t{idx}_o");
            let t = g.add_task(format!("t{idx}"), rng.gen_range(1.0f64..20.0));

            // Pick 1..=3 distinct inputs: upstream vars or externals.
            let mut ins: Vec<(String, Option<TaskId>)> = Vec::new();
            for _ in 0..rng.gen_range(1usize..=3) {
                if !prev.is_empty() && rng.gen_bool(0.6) {
                    let (p, var) = prev[rng.gen_range(0..prev.len())].clone();
                    if !ins.iter().any(|(v, _)| *v == var) {
                        ins.push((var, Some(p)));
                    }
                } else {
                    let ev = format!("x{}", rng.gen_range(0usize..5));
                    if !ins.iter().any(|(v, _)| *v == ev) {
                        externals
                            .entry(ev.clone())
                            .or_insert_with(|| Value::Num(rng.gen_range(1.0f64..9.0)));
                        ins.push((ev, None));
                    }
                }
            }
            // Sometimes declare an input no statement will reference
            // (DCE should trim it and drop its arc/port).
            let unused = rng.gen_bool(0.3).then(|| {
                if !prev.is_empty() && rng.gen_bool(0.5) {
                    let (p, var) = prev[rng.gen_range(0..prev.len())].clone();
                    if ins.iter().any(|(v, _)| *v == var) {
                        None
                    } else {
                        Some((var, Some(p)))
                    }
                } else {
                    let ev = "xu".to_string();
                    if ins.iter().any(|(v, _)| *v == ev) {
                        None
                    } else {
                        externals.entry(ev.clone()).or_insert(Value::Num(4.25));
                        Some((ev, None))
                    }
                }
            });
            let unused = unused.flatten();

            // Program body: a referenced mix of the live inputs.
            let mut decls: Vec<&str> = ins.iter().map(|(v, _)| v.as_str()).collect();
            if let Some((v, _)) = &unused {
                decls.push(v.as_str());
            }
            let mut src = format!(
                "task T{idx}\n  in {}\n  out {out_var}\n  local s, i\nbegin\n",
                decls.join(", ")
            );
            src.push_str(&format!("  s := {}\n", ins[0].0));
            for (v, _) in ins.iter().skip(1) {
                src.push_str(&format!("  s := s * 3 + {v}\n"));
            }
            if rng.gen_bool(0.4) {
                let k = rng.gen_range(2usize..=5);
                src.push_str(&format!(
                    "  for i := 1 to {k} do\n    s := s + i * {}\n  end\n",
                    ins[0].0
                ));
            }
            if rng.gen_bool(0.2) {
                src.push_str("  print s\n");
            }
            src.push_str(&format!("  {out_var} := s\nend\n"));
            let name = lib.add_source(&src).expect("generated program parses");
            g.set_program(t, name).unwrap();

            // Arcs for internally fed inputs (including the unused one).
            for (v, p) in ins.iter().chain(unused.iter()) {
                match p {
                    Some(p) => {
                        g.add_edge(*p, t, rng.gen_range(1.0f64..9.0), v.clone())
                            .unwrap();
                    }
                    None => ext_readers.entry(v.clone()).or_default().push(t),
                }
            }
            // Dead arc: a label the program never declares.
            if !prev.is_empty() && rng.gen_bool(0.3) {
                let (p, _) = prev[rng.gen_range(0..prev.len())];
                g.add_edge(p, t, 1.0, format!("junk{idx}")).unwrap();
            }
            // Shadowed duplicate of an internally fed input, from some
            // other upstream task (the graph rejects exact duplicates).
            // The router never reads it: the first arc with the label wins.
            if rng.gen_bool(0.3) {
                if let Some((v, Some(p))) = ins.iter().find(|(_, p)| p.is_some()) {
                    if let Some((q, _)) = prev.iter().find(|(q, _)| q != p) {
                        g.add_edge(*q, t, 1.0, v.clone()).unwrap();
                    }
                }
            }
            for (v, _) in &ins {
                consumed.push(v.clone());
            }
            produced.push((t, out_var));
            idx += 1;
        }
    }

    let inputs = ext_readers
        .into_iter()
        .map(|(var, tasks)| ExternalPort { var, tasks })
        .collect();
    // Every never-consumed product is an observed output, so the
    // differential check sees every live task's value.
    let outputs = produced
        .iter()
        .filter(|(_, v)| !consumed.contains(v))
        .map(|(t, v)| ExternalPort {
            var: v.clone(),
            tasks: vec![*t],
        })
        .collect();
    (
        Flattened {
            graph: g,
            inputs,
            outputs,
        },
        lib,
        externals,
    )
}

fn run(
    flat: &Flattened,
    lib: &ProgramLibrary,
    ext: &BTreeMap<String, Value>,
    reference: bool,
) -> ExecReport {
    let options = ExecOptions {
        interp: InterpConfig {
            reference,
            ..Default::default()
        },
        ..Default::default()
    };
    execute(flat, lib, ext, &options).expect("design executes")
}

/// Print lines as a sorted multiset. Task ids shift under rewrites and
/// parallel workers may interleave, so only the lines are compared.
fn print_multiset(r: &ExecReport) -> Vec<String> {
    let mut v: Vec<String> = r.prints.iter().map(|(_, line)| line.clone()).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DCE + fusion preserve output values, print output and total
    /// operation counts exactly, on both engines, for random designs.
    #[test]
    fn optimizer_preserves_outcomes(seed in any::<u64>()) {
        let (flat, lib, ext) = random_flat(seed);
        let base = run(&flat, &lib, &ext, false);

        let (dced, dlib, _) = eliminate_dead(&flat, &lib).unwrap();
        let (fused, flib, stats) = fuse(&dced, &dlib).unwrap();
        prop_assert!(fused.graph.is_dag());
        prop_assert_eq!(stats.tasks_after, fused.graph.task_count());

        for (name, design, library) in [("dce", &dced, &dlib), ("fuse", &fused, &flib)] {
            let vm = run(design, library, &ext, false);
            prop_assert_eq!(&base.outputs, &vm.outputs, "{} vm outputs", name);
            prop_assert_eq!(base.total_ops(), vm.total_ops(), "{} vm ops", name);
            prop_assert_eq!(print_multiset(&base), print_multiset(&vm), "{} vm prints", name);

            let tree = run(design, library, &ext, true);
            prop_assert_eq!(&base.outputs, &tree.outputs, "{} reference outputs", name);
            prop_assert_eq!(base.total_ops(), tree.total_ops(), "{} reference ops", name);
        }
    }

    /// Total graph weight is conserved by fusion: fused tasks weigh the
    /// sum of their members, singletons are untouched.
    #[test]
    fn fusion_conserves_total_weight(seed in any::<u64>()) {
        let (flat, lib, _) = random_flat(seed);
        let (dced, dlib, _) = eliminate_dead(&flat, &lib).unwrap();
        let before = dced.graph.total_weight();
        let (fused, _, _) = fuse(&dced, &dlib).unwrap();
        prop_assert!((fused.graph.total_weight() - before).abs() < 1e-9);
    }
}

/// Explicit clustering: fusing a 3-chain produces one task whose weight
/// is the exact member sum and whose execution matches the original.
#[test]
fn explicit_chain_fusion_weight_and_outcome() {
    let mut lib = ProgramLibrary::new();
    lib.add_source("task A in a out p begin p := a + 1 end")
        .unwrap();
    lib.add_source("task B in p out q begin q := p * 2 end")
        .unwrap();
    lib.add_source("task C in q out r begin r := q - 3 end")
        .unwrap();
    let mut g = TaskGraph::new("chain");
    let a = g.add_task("a", 2.5);
    let b = g.add_task("b", 3.25);
    let c = g.add_task("c", 4.0);
    g.set_program(a, "A").unwrap();
    g.set_program(b, "B").unwrap();
    g.set_program(c, "C").unwrap();
    g.add_edge(a, b, 1.0, "p").unwrap();
    g.add_edge(b, c, 1.0, "q").unwrap();
    let flat = Flattened {
        graph: g,
        inputs: vec![ExternalPort {
            var: "a".into(),
            tasks: vec![a],
        }],
        outputs: vec![ExternalPort {
            var: "r".into(),
            tasks: vec![c],
        }],
    };
    let ext: BTreeMap<String, Value> = [("a".to_string(), Value::Num(10.0))].into();

    let base = run(&flat, &lib, &ext, false);
    let (fused, flib, stats) = fuse_with(&flat, &lib, &[0, 0, 0]).unwrap();
    assert_eq!(stats.clusters_fused, 1);
    assert_eq!(fused.graph.task_count(), 1);
    let (_, only) = fused.graph.tasks().next().unwrap();
    assert!((only.weight - 9.75).abs() < 1e-12, "weight {}", only.weight);

    let got = run(&fused, &flib, &ext, false);
    assert_eq!(base.outputs, got.outputs);
    assert_eq!(base.total_ops(), got.total_ops());
    assert_eq!(got.outputs["r"], Value::Num(19.0));
}

/// Map expansion at an odd tiling (3x3 over n = 12) stays bit-identical
/// to the dense template end to end, complementing the 2x2 case in the
/// core crate's tests.
#[test]
fn expansion_n12_tiles3_bit_identical() {
    use banger::project::Project;
    use banger_machine::{Machine, MachineParams, Topology};
    use banger_taskgraph::HierGraph;

    let n = 12;
    let build = || {
        let mut design = HierGraph::new("dense");
        let s_in = design.add_storage("a", (n * n) as f64);
        let t = design.add_task_with_program("fact", 1000.0, "DenseLU");
        let s_out = design.add_storage("lu", (n * n) as f64);
        design.add_flow(s_in, t).unwrap();
        design.add_flow(t, s_out).unwrap();
        let mut p = Project::new("dense", design);
        p.library_mut()
            .add(banger_opt::dense_lu_program("DenseLU", "a", "lu", n));
        p.set_machine(Machine::new(
            Topology::hypercube(2),
            MachineParams::default(),
        ));
        p
    };
    // A diagonally dominant matrix, LU-factorable without pivoting.
    let a: Vec<f64> = (0..n * n)
        .map(|k| {
            let (i, j) = (k / n, k % n);
            if i == j {
                2.0 * n as f64 + i as f64
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        })
        .collect();
    let inputs: BTreeMap<String, Value> =
        [("a".to_string(), Value::array(a))].into_iter().collect();

    let mut dense = build();
    let want = dense.run(&inputs).unwrap();
    let mut tiled = build();
    tiled.expand_task("fact", 3).unwrap();
    tiled.optimize(false).unwrap();
    let got = tiled.run(&inputs).unwrap();

    let w = want.outputs["lu"].as_array("lu").unwrap();
    let g = got.outputs["lu"].as_array("lu").unwrap();
    assert_eq!(w.len(), g.len());
    for (x, y) in w.iter().zip(g.iter()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
