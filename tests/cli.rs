//! Integration tests for the `banger` CLI on the bundled `.bang` project.

use std::path::PathBuf;
use std::process::Command;

fn banger() -> Command {
    // The CLI lives in another workspace package, so CARGO_BIN_EXE_* is not
    // set here; locate it next to this test executable
    // (target/debug/deps/this_test -> target/debug/banger) and build it on
    // demand the first time.
    let mut dir = std::env::current_exe().expect("test exe path");
    dir.pop(); // deps/
    dir.pop(); // debug/
    let path: PathBuf = dir.join("banger");
    if !path.exists() {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "banger", "--bin", "banger"])
            .status()
            .expect("cargo build runs");
        assert!(status.success(), "building the banger CLI failed");
    }
    Command::new(path)
}

fn project_path() -> &'static str {
    "examples/projects/heat_probe.bang"
}

fn run_ok(args: &[&str]) -> String {
    let out = banger().args(args).output().expect("CLI runs");
    assert!(
        out.status.success(),
        "banger {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn show_reports_design() {
    let out = run_ok(&["show", project_path()]);
    assert!(out.contains("project heat_probe"));
    assert!(out.contains("5 leaf tasks"));
    assert!(out.contains("digraph"));
    assert!(out.contains("inputs: [\"left\", \"right\"]"));
}

#[test]
fn gantt_renders_schedule() {
    let out = run_ok(&["gantt", project_path()]);
    assert!(out.contains("Gantt chart — MH"));
    assert!(out.contains("P0"));
    assert!(out.contains("makespan"));
    // Alternate heuristic selection works.
    let out2 = run_ok(&["gantt", project_path(), "-H", "ETF"]);
    assert!(out2.contains("Gantt chart — ETF"));
}

#[test]
fn compare_lists_all_heuristics() {
    let out = run_ok(&["compare", project_path()]);
    for h in ["serial", "HLFET", "MCP", "ETF", "DLS", "MH", "DSH"] {
        assert!(out.contains(h), "missing {h} in:\n{out}");
    }
}

#[test]
fn recommend_ranks_standard_machines() {
    let out = run_ok(&["recommend", project_path(), "-p", "4"]);
    assert!(
        out.contains("machine search — heat_probe (budget 4)"),
        "{out}"
    );
    for m in ["single", "hypercube-1", "hypercube-2", "ring-4", "star-4"] {
        assert!(out.contains(m), "missing {m} in:\n{out}");
    }
    // Ranked by makespan: the serial machine can never beat the top row.
    let first = out.lines().nth(2).unwrap();
    assert!(!first.starts_with("single"), "{out}");
    // Deterministic across invocations (the sweep runs on worker threads).
    assert_eq!(out, run_ok(&["recommend", project_path(), "-p", "4"]));

    let err = banger()
        .args(["recommend", project_path(), "-p", "0"])
        .output()
        .expect("CLI runs");
    assert!(!err.status.success());
    assert!(String::from_utf8_lossy(&err.stderr).contains("at least 1"));
}

#[test]
fn run_executes_with_inputs() {
    let out = run_ok(&["run", project_path(), "-i", "left=100", "-i", "right=0"]);
    assert!(out.contains("summary = ["), "{out}");
    // Steady-state endpoints of the relaxed halves straddle 50 degrees.
    let inner = out
        .lines()
        .find(|l| l.starts_with("summary"))
        .unwrap()
        .split_once('[')
        .unwrap()
        .1
        .trim_end_matches(']');
    let vals: Vec<f64> = inner
        .split(',')
        .map(|s| s.trim().parse().unwrap())
        .collect();
    assert!(vals[0] > vals[1], "lower half is hotter: {vals:?}");
    assert!((vals[2] - 50.0).abs() < 10.0, "midpoint near 50: {vals:?}");
}

#[test]
fn advise_reports_bottlenecks() {
    let out = run_ok(&["advise", project_path()]);
    assert!(out.contains("binding chain"), "{out}");
    assert!(out.contains("suggestions:"), "{out}");
}

#[test]
fn animate_renders_frames() {
    let out = run_ok(&["animate", project_path()]);
    assert!(out.contains("Animation"), "{out}");
    assert!(out.contains("t="), "{out}");
}

#[test]
fn parallelize_rewrites_document() {
    // `init` is top-level but not a reduction: expect a clean error.
    let out = banger()
        .args(["parallelize", project_path(), "init", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot parallelize"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Tasks nested inside compounds are reported as unknown (the transform
    // works on top-level nodes).
    let out2 = banger()
        .args(["parallelize", project_path(), "lower", "4"])
        .output()
        .unwrap();
    assert!(!out2.status.success());
    assert!(
        String::from_utf8_lossy(&out2.stderr).contains("no program"),
        "{}",
        String::from_utf8_lossy(&out2.stderr)
    );
}

#[test]
fn svg_writes_three_files() {
    let dir = std::env::temp_dir().join("banger_svg_test");
    let _ = std::fs::remove_dir_all(&dir);
    run_ok(&["svg", project_path(), "-o", dir.to_str().unwrap()]);
    for name in ["gantt.svg", "speedup.svg", "utilization.svg"] {
        let body = std::fs::read_to_string(dir.join(name)).unwrap();
        assert!(body.starts_with("<svg"), "{name}");
        assert!(body.trim_end().ends_with("</svg>"), "{name}");
    }
}

#[test]
fn simulate_reports_ratio() {
    let out = run_ok(&["simulate", project_path()]);
    assert!(out.contains("predicted"));
    assert!(out.contains("ratio"));
    assert!(out.contains("messages"));
}

#[test]
fn speedup_chart_renders() {
    let out = run_ok(&[
        "speedup",
        project_path(),
        "-t",
        "single,hypercube:1,hypercube:2",
    ]);
    assert!(out.contains("predicted speedup"));
    assert!(out.contains("1 procs"));
    assert!(out.contains("4 procs"));
}

#[test]
fn codegen_emits_rust_and_c() {
    let rust = run_ok(&[
        "codegen",
        project_path(),
        "rust",
        "-i",
        "left=100",
        "-i",
        "right=0",
    ]);
    assert!(rust.contains("fn main()"));
    assert!(rust.contains("task_RelaxLower"));
    let c = run_ok(&[
        "codegen",
        project_path(),
        "c",
        "-i",
        "left=100",
        "-i",
        "right=0",
    ]);
    assert!(c.contains("MPI_Init"));
}

#[test]
fn save_and_verify_schedule_round_trip() {
    let path = std::env::temp_dir().join("banger_cli_test.sched");
    run_ok(&[
        "save-schedule",
        project_path(),
        "-H",
        "DSH",
        "-o",
        path.to_str().unwrap(),
    ]);
    let out = run_ok(&["verify", project_path(), "-s", path.to_str().unwrap()]);
    assert!(out.contains("VALID"), "{out}");
    assert!(out.contains("ratio"), "{out}");

    // Corrupt the schedule: verification must fail.
    let mut text = std::fs::read_to_string(&path).unwrap();
    text = text.replacen("primary", "copy", 1);
    std::fs::write(&path, text).unwrap();
    let bad = banger()
        .args(["verify", project_path(), "-s", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("INVALID"),
        "{}",
        String::from_utf8_lossy(&bad.stderr)
    );
}

#[test]
fn matmul_project_computes_identity_product() {
    let a = "A=[1,0,0,0,0,0,0,1,0,0,0,0,0,0,1,0,0,0,0,0,0,1,0,0,0,0,0,0,1,0,0,0,0,0,0,1]";
    let b = "B=[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31,32,33,34,35,36]";
    let out = run_ok(&["run", "examples/projects/matmul.bang", "-i", a, "-i", b]);
    // Identity * B = B.
    assert!(out.contains("C = [1, 2, 3, 4, 5, 6,"), "{out}");
    assert!(out.contains("35, 36]"), "{out}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = banger()
        .args(["gantt", "/no/such/file.bang"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let out2 = banger()
        .args(["frobnicate", project_path()])
        .output()
        .unwrap();
    assert!(!out2.status.success());

    let out3 = banger()
        .args(["run", project_path(), "-i", "notapair"])
        .output()
        .unwrap();
    assert!(!out3.status.success());
    assert!(String::from_utf8_lossy(&out3.stderr).contains("var=value"));
}
