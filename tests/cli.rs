//! Integration tests for the `banger` CLI on the bundled `.bang` project.

use std::path::PathBuf;
use std::process::Command;

fn banger() -> Command {
    // The CLI lives in another workspace package, so CARGO_BIN_EXE_* is not
    // set here; locate it next to this test executable
    // (target/debug/deps/this_test -> target/debug/banger) and build it on
    // demand the first time.
    let mut dir = std::env::current_exe().expect("test exe path");
    dir.pop(); // deps/
    dir.pop(); // debug/
    let path: PathBuf = dir.join("banger");
    if !path.exists() {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "banger", "--bin", "banger"])
            .status()
            .expect("cargo build runs");
        assert!(status.success(), "building the banger CLI failed");
    }
    Command::new(path)
}

fn project_path() -> &'static str {
    "examples/projects/heat_probe.bang"
}

fn run_ok(args: &[&str]) -> String {
    let out = banger().args(args).output().expect("CLI runs");
    assert!(
        out.status.success(),
        "banger {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn show_reports_design() {
    let out = run_ok(&["show", project_path()]);
    assert!(out.contains("project heat_probe"));
    assert!(out.contains("5 leaf tasks"));
    assert!(out.contains("digraph"));
    assert!(out.contains("inputs: [\"left\", \"right\"]"));
}

#[test]
fn gantt_renders_schedule() {
    let out = run_ok(&["gantt", project_path()]);
    assert!(out.contains("Gantt chart — MH"));
    assert!(out.contains("P0"));
    assert!(out.contains("makespan"));
    // Alternate heuristic selection works.
    let out2 = run_ok(&["gantt", project_path(), "-H", "ETF"]);
    assert!(out2.contains("Gantt chart — ETF"));
}

#[test]
fn compare_lists_all_heuristics() {
    let out = run_ok(&["compare", project_path()]);
    for h in ["serial", "HLFET", "MCP", "ETF", "DLS", "MH", "DSH"] {
        assert!(out.contains(h), "missing {h} in:\n{out}");
    }
}

#[test]
fn recommend_ranks_standard_machines() {
    let out = run_ok(&["recommend", project_path(), "-p", "4"]);
    assert!(
        out.contains("machine search — heat_probe (budget 4)"),
        "{out}"
    );
    for m in ["single", "hypercube-1", "hypercube-2", "ring-4", "star-4"] {
        assert!(out.contains(m), "missing {m} in:\n{out}");
    }
    // Ranked by makespan: the serial machine can never beat the top row.
    let first = out.lines().nth(2).unwrap();
    assert!(!first.starts_with("single"), "{out}");
    // Deterministic across invocations (the sweep runs on worker threads).
    assert_eq!(out, run_ok(&["recommend", project_path(), "-p", "4"]));

    let err = banger()
        .args(["recommend", project_path(), "-p", "0"])
        .output()
        .expect("CLI runs");
    assert!(!err.status.success());
    assert!(String::from_utf8_lossy(&err.stderr).contains("at least 1"));
}

#[test]
fn run_executes_with_inputs() {
    let out = run_ok(&["run", project_path(), "-i", "left=100", "-i", "right=0"]);
    assert!(out.contains("summary = ["), "{out}");
    // Steady-state endpoints of the relaxed halves straddle 50 degrees.
    let inner = out
        .lines()
        .find(|l| l.starts_with("summary"))
        .unwrap()
        .split_once('[')
        .unwrap()
        .1
        .trim_end_matches(']');
    let vals: Vec<f64> = inner
        .split(',')
        .map(|s| s.trim().parse().unwrap())
        .collect();
    assert!(vals[0] > vals[1], "lower half is hotter: {vals:?}");
    assert!((vals[2] - 50.0).abs() < 10.0, "midpoint near 50: {vals:?}");
}

#[test]
fn run_trace_emits_chrome_json_and_drift_report() {
    let trace_path = std::env::temp_dir().join("banger_cli_test_trace.json");
    let out = banger()
        .args([
            "run",
            project_path(),
            "-i",
            "left=100",
            "-i",
            "right=0",
            "--trace",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("CLI runs");
    assert!(
        out.status.success(),
        "traced run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);

    // The normal run output still prints, plus both Gantt charts and
    // the per-task drift table.
    assert!(stdout.contains("summary = ["), "{stdout}");
    assert!(stdout.contains("predicted (MH):"), "{stdout}");
    assert!(stdout.contains("observed:"), "{stdout}");
    assert!(stdout.contains("drift report"), "{stdout}");
    assert!(stdout.contains("makespan: predicted"), "{stdout}");
    assert!(stderr.contains("task runs in"), "{stderr}");
    assert!(stderr.contains("CoW copies"), "{stderr}");

    // The file is valid Chrome trace-format JSON: an object with a
    // traceEvents array of M/X/C phase events carrying pid/tid/ts.
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let json = parse_json(text.trim()).expect("trace file is valid JSON");
    assert_eq!(
        json.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let Some(Json::Arr(events)) = json.get("traceEvents") else {
        panic!("traceEvents missing or not an array");
    };
    assert!(!events.is_empty());
    let mut complete = 0;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("event has ph");
        assert!(
            matches!(ph, "M" | "X" | "C" | "i"),
            "unexpected phase {ph:?}"
        );
        if ph == "X" {
            assert!(e.get("ts").is_some() && e.get("dur").is_some());
            assert!(e.get("name").and_then(Json::as_str).is_some());
            // Complete events are task spans or queue-wait intervals.
            if e.get("cat").and_then(Json::as_str) == Some("task") {
                complete += 1;
            }
        }
    }
    // One task-span complete event per task run (5 tasks in heat_probe).
    assert_eq!(complete, 5, "{text}");
    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn run_trace_without_path_is_a_usage_error() {
    let err = banger()
        .args(["run", project_path(), "--trace"])
        .output()
        .expect("CLI runs");
    assert!(!err.status.success());
    assert!(
        String::from_utf8_lossy(&err.stderr).contains("--trace needs an output path"),
        "{}",
        String::from_utf8_lossy(&err.stderr)
    );
}

#[test]
fn trial_runs_single_program_on_both_engines() {
    let vm = run_ok(&[
        "trial",
        project_path(),
        "Init",
        "-i",
        "left=100",
        "-i",
        "right=0",
    ]);
    assert!(vm.contains("rod0 = [100,"), "{vm}");
    let tree = run_ok(&[
        "trial",
        project_path(),
        "Init",
        "-i",
        "left=100",
        "-i",
        "right=0",
        "--reference",
    ]);
    // Identical stdout (outputs and prints) from both engines; the op
    // count on stderr must match too.
    assert_eq!(vm, tree);
    let ops_of = |reference: bool| {
        let mut args = vec![
            "trial",
            project_path(),
            "Init",
            "-i",
            "left=100",
            "-i",
            "right=0",
        ];
        if reference {
            args.push("--reference");
        }
        let out = banger().args(&args).output().unwrap();
        assert!(out.status.success());
        let err = String::from_utf8_lossy(&out.stderr).into_owned();
        err.split_once(" ops")
            .unwrap()
            .0
            .rsplit('(')
            .next()
            .unwrap()
            .to_string()
    };
    assert_eq!(ops_of(false), ops_of(true));

    // Unknown program fails cleanly; missing program name is a usage error.
    let bad = banger()
        .args(["trial", project_path(), "NoSuch"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("no program named"));
    let none = banger().args(["trial", project_path()]).output().unwrap();
    assert!(!none.status.success());
}

#[test]
fn advise_reports_bottlenecks() {
    let out = run_ok(&["advise", project_path()]);
    assert!(out.contains("binding chain"), "{out}");
    assert!(out.contains("suggestions:"), "{out}");
}

#[test]
fn animate_renders_frames() {
    let out = run_ok(&["animate", project_path()]);
    assert!(out.contains("Animation"), "{out}");
    assert!(out.contains("t="), "{out}");
}

#[test]
fn parallelize_rewrites_document() {
    // `init` is top-level but not a reduction: expect a clean error.
    let out = banger()
        .args(["parallelize", project_path(), "init", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot parallelize"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Tasks nested inside compounds are reported as unknown (the transform
    // works on top-level nodes).
    let out2 = banger()
        .args(["parallelize", project_path(), "lower", "4"])
        .output()
        .unwrap();
    assert!(!out2.status.success());
    assert!(
        String::from_utf8_lossy(&out2.stderr).contains("no program"),
        "{}",
        String::from_utf8_lossy(&out2.stderr)
    );
}

#[test]
fn svg_writes_three_files() {
    let dir = std::env::temp_dir().join("banger_svg_test");
    let _ = std::fs::remove_dir_all(&dir);
    run_ok(&["svg", project_path(), "-o", dir.to_str().unwrap()]);
    for name in ["gantt.svg", "speedup.svg", "utilization.svg"] {
        let body = std::fs::read_to_string(dir.join(name)).unwrap();
        assert!(body.starts_with("<svg"), "{name}");
        assert!(body.trim_end().ends_with("</svg>"), "{name}");
    }
}

#[test]
fn simulate_reports_ratio() {
    let out = run_ok(&["simulate", project_path()]);
    assert!(out.contains("predicted"));
    assert!(out.contains("ratio"));
    assert!(out.contains("messages"));
}

#[test]
fn speedup_chart_renders() {
    let out = run_ok(&[
        "speedup",
        project_path(),
        "-t",
        "single,hypercube:1,hypercube:2",
    ]);
    assert!(out.contains("predicted speedup"));
    assert!(out.contains("1 procs"));
    assert!(out.contains("4 procs"));
}

#[test]
fn codegen_emits_rust_and_c() {
    let rust = run_ok(&[
        "codegen",
        project_path(),
        "rust",
        "-i",
        "left=100",
        "-i",
        "right=0",
    ]);
    assert!(rust.contains("fn main()"));
    assert!(rust.contains("task_RelaxLower"));
    let c = run_ok(&[
        "codegen",
        project_path(),
        "c",
        "-i",
        "left=100",
        "-i",
        "right=0",
    ]);
    assert!(c.contains("MPI_Init"));
}

#[test]
fn save_and_verify_schedule_round_trip() {
    let path = std::env::temp_dir().join("banger_cli_test.sched");
    run_ok(&[
        "save-schedule",
        project_path(),
        "-H",
        "DSH",
        "-o",
        path.to_str().unwrap(),
    ]);
    let out = run_ok(&["verify", project_path(), "-s", path.to_str().unwrap()]);
    assert!(out.contains("VALID"), "{out}");
    assert!(out.contains("ratio"), "{out}");

    // Corrupt the schedule: verification must fail.
    let mut text = std::fs::read_to_string(&path).unwrap();
    text = text.replacen("primary", "copy", 1);
    std::fs::write(&path, text).unwrap();
    let bad = banger()
        .args(["verify", project_path(), "-s", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("INVALID"),
        "{}",
        String::from_utf8_lossy(&bad.stderr)
    );
}

#[test]
fn matmul_project_computes_identity_product() {
    let a = "A=[1,0,0,0,0,0,0,1,0,0,0,0,0,0,1,0,0,0,0,0,0,1,0,0,0,0,0,0,1,0,0,0,0,0,0,1]";
    let b = "B=[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31,32,33,34,35,36]";
    let out = run_ok(&["run", "examples/projects/matmul.bang", "-i", a, "-i", b]);
    // Identity * B = B.
    assert!(out.contains("C = [1, 2, 3, 4, 5, 6,"), "{out}");
    assert!(out.contains("35, 36]"), "{out}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = banger()
        .args(["gantt", "/no/such/file.bang"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    // Unknown subcommands exit 2 with a pointed message, not a usage dump.
    let out2 = banger()
        .args(["frobnicate", project_path()])
        .output()
        .unwrap();
    assert_eq!(out2.status.code(), Some(2));
    let err2 = String::from_utf8_lossy(&out2.stderr);
    assert!(err2.contains("unknown subcommand"), "{err2}");
    assert!(err2.contains("frobnicate"), "{err2}");

    // A known subcommand with no file also exits 2.
    let out3 = banger().args(["gantt"]).output().unwrap();
    assert_eq!(out3.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out3.stderr).contains("file.bang"));

    let out4 = banger()
        .args(["run", project_path(), "-i", "notapair"])
        .output()
        .unwrap();
    assert!(!out4.status.success());
    assert!(String::from_utf8_lossy(&out4.stderr).contains("var=value"));
}

#[test]
fn help_lists_every_subcommand_and_exit_codes() {
    let out = banger().args(["help"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in [
        "check",
        "show",
        "gantt",
        "compare",
        "simulate",
        "animate",
        "advise",
        "recommend",
        "svg",
        "save-schedule",
        "verify",
        "run",
        "trial",
        "speedup",
        "codegen",
        "parallelize",
    ] {
        assert!(text.contains(cmd), "help is missing {cmd}:\n{text}");
    }
    assert!(text.contains("exit codes"), "{text}");
    // `--help` is an alias.
    let alias = banger().args(["--help"]).output().unwrap();
    assert_eq!(alias.status.code(), Some(0));
}

fn racy_path() -> &'static str {
    "examples/projects/racy_pipeline.bang"
}

#[test]
fn check_passes_clean_designs() {
    let out = run_ok(&["check", project_path()]);
    assert!(out.contains("0 errors"), "{out}");
    let out2 = run_ok(&["check", "examples/projects/matmul.bang"]);
    assert!(out2.contains("0 errors"), "{out2}");
}

#[test]
fn check_reports_race_and_exits_nonzero() {
    let out = banger().args(["check", racy_path()]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("B001"), "{text}");
    assert!(text.contains("sensor_a"), "{text}");
    assert!(text.contains("sensor_b"), "{text}");
    assert!(text.contains("reading"), "{text}");
    // Error-severity findings also refuse scheduling and execution.
    let gantt = banger().args(["gantt", racy_path()]).output().unwrap();
    assert_eq!(gantt.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&gantt.stderr).contains("B001"),
        "{}",
        String::from_utf8_lossy(&gantt.stderr)
    );
}

// ---- A minimal JSON reader (no serde in the workspace) -----------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let v = parse_value_at(&chars, &mut i)?;
    skip_ws(&chars, &mut i);
    if i != chars.len() {
        return Err(format!("trailing garbage at {i}"));
    }
    Ok(v)
}

fn skip_ws(c: &[char], i: &mut usize) {
    while *i < c.len() && c[*i].is_whitespace() {
        *i += 1;
    }
}

fn parse_value_at(c: &[char], i: &mut usize) -> Result<Json, String> {
    skip_ws(c, i);
    match c.get(*i) {
        Some('[') => {
            *i += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(c, i);
                if c.get(*i) == Some(&']') {
                    *i += 1;
                    return Ok(Json::Arr(items));
                }
                if !items.is_empty() {
                    if c.get(*i) != Some(&',') {
                        return Err(format!("expected , at {i}"));
                    }
                    *i += 1;
                }
                items.push(parse_value_at(c, i)?);
            }
        }
        Some('{') => {
            *i += 1;
            let mut pairs = Vec::new();
            loop {
                skip_ws(c, i);
                if c.get(*i) == Some(&'}') {
                    *i += 1;
                    return Ok(Json::Obj(pairs));
                }
                if !pairs.is_empty() {
                    if c.get(*i) != Some(&',') {
                        return Err(format!("expected , at {i}"));
                    }
                    *i += 1;
                    skip_ws(c, i);
                }
                let Json::Str(key) = parse_value_at(c, i)? else {
                    return Err(format!("expected string key at {i}"));
                };
                skip_ws(c, i);
                if c.get(*i) != Some(&':') {
                    return Err(format!("expected : at {i}"));
                }
                *i += 1;
                pairs.push((key, parse_value_at(c, i)?));
            }
        }
        Some('"') => {
            *i += 1;
            let mut s = String::new();
            loop {
                match c.get(*i) {
                    None => return Err("unterminated string".into()),
                    Some('"') => {
                        *i += 1;
                        return Ok(Json::Str(s));
                    }
                    Some('\\') => {
                        *i += 1;
                        match c.get(*i) {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('n') => s.push('\n'),
                            Some('r') => s.push('\r'),
                            Some('t') => s.push('\t'),
                            Some('u') => {
                                let hex: String = c[*i + 1..*i + 5].iter().collect();
                                let n = u32::from_str_radix(&hex, 16).map_err(|e| e.to_string())?;
                                s.push(char::from_u32(n).ok_or("bad codepoint")?);
                                *i += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *i += 1;
                    }
                    Some(&ch) => {
                        s.push(ch);
                        *i += 1;
                    }
                }
            }
        }
        Some('t') if c[*i..].starts_with(&['t', 'r', 'u', 'e']) => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some('f') if c[*i..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some('n') if c[*i..].starts_with(&['n', 'u', 'l', 'l']) => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *i;
            while *i < c.len() && (c[*i].is_ascii_digit() || "+-.eE".contains(c[*i])) {
                *i += 1;
            }
            let s: String = c[start..*i].iter().collect();
            s.parse::<f64>().map(Json::Num).map_err(|e| e.to_string())
        }
        None => Err("empty input".into()),
    }
}

#[test]
fn check_json_round_trips_without_serde() {
    let out = banger()
        .args(["check", racy_path(), "--format", "json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    let parsed = parse_json(text.trim()).expect("check --format json emits valid JSON");
    let Json::Arr(items) = &parsed else {
        panic!("expected a JSON array, got {parsed:?}");
    };
    assert!(!items.is_empty());
    for item in items {
        let code = item.get("code").and_then(Json::as_str).expect("code field");
        assert!(
            code.len() == 4 && code.starts_with('B'),
            "unexpected code {code:?}"
        );
        let sev = item
            .get("severity")
            .and_then(Json::as_str)
            .expect("severity field");
        assert!(sev == "error" || sev == "warning", "{sev}");
        assert!(item.get("message").and_then(Json::as_str).is_some());
    }
    let b001 = items
        .iter()
        .find(|i| i.get("code").and_then(Json::as_str) == Some("B001"))
        .expect("B001 present");
    let Some(Json::Arr(nodes)) = b001.get("nodes") else {
        panic!("B001 carries nodes: {b001:?}");
    };
    let names: Vec<&str> = nodes.iter().filter_map(Json::as_str).collect();
    assert!(
        names.contains(&"sensor_a") && names.contains(&"sensor_b"),
        "{names:?}"
    );

    // A diagnostic-free design yields an empty array, also valid JSON.
    let clean = run_ok(&["check", "examples/projects/matmul.bang", "--format", "json"]);
    assert_eq!(parse_json(clean.trim()), Ok(Json::Arr(vec![])));
}

#[test]
fn check_weights_prints_static_cost_table() {
    let out = run_ok(&["check", "examples/projects/lu3.bang", "--weights"]);
    assert!(out.contains("static bounds"), "{out}");
    assert!(out.contains("Factor.fan1"), "{out}");
    // Every LU body is literal-bound loops: the bounds collapse.
    assert!(out.contains("(exact)"), "{out}");
}

#[test]
fn check_weights_json_with_measured_run() {
    // Without inputs: an object with diagnostics + weights, measured null.
    let out = run_ok(&["check", project_path(), "--weights", "--format", "json"]);
    let json = parse_json(out.trim()).expect("valid JSON");
    let Some(Json::Arr(diags)) = json.get("diagnostics") else {
        panic!("diagnostics array missing: {json:?}");
    };
    // heat_probe's relax kernels index with statically-unknown bounds.
    assert!(diags
        .iter()
        .any(|d| d.get("code").and_then(Json::as_str) == Some("B041")));
    let Some(Json::Arr(rows)) = json.get("weights") else {
        panic!("weights array missing: {json:?}");
    };
    assert_eq!(rows.len(), 5, "{json:?}");
    for row in rows {
        assert!(row.get("task").and_then(Json::as_str).is_some());
        assert!(matches!(row.get("drawn"), Some(Json::Num(_))));
        assert_eq!(row.get("measured"), Some(&Json::Null));
    }
    // The relax kernels loop over an unknown-length rod: upper bound
    // unbounded, serialized as null (never `inf`).
    let lower = rows
        .iter()
        .find(|r| r.get("task").and_then(Json::as_str) == Some("Relax.lower"))
        .expect("Relax.lower row");
    let stat = lower.get("static").expect("static object");
    assert_eq!(stat.get("ops_hi"), Some(&Json::Null), "{stat:?}");
    assert_eq!(stat.get("exact"), Some(&Json::Bool(false)));

    // With inputs the design runs once and measured ops land in-bounds.
    let out = run_ok(&[
        "check",
        project_path(),
        "--weights",
        "--format",
        "json",
        "-i",
        "left=100",
        "-i",
        "right=0",
    ]);
    let json = parse_json(out.trim()).expect("valid JSON");
    let Some(Json::Arr(rows)) = json.get("weights") else {
        panic!("weights array missing: {json:?}");
    };
    for row in rows {
        let Some(Json::Num(m)) = row.get("measured") else {
            panic!("measured missing after a run: {row:?}");
        };
        let stat = row.get("static").expect("static object");
        let Some(Json::Num(lo)) = stat.get("ops_lo") else {
            panic!("ops_lo missing: {stat:?}");
        };
        assert!(lo <= m, "{row:?}");
        if let Some(Json::Num(hi)) = stat.get("ops_hi") {
            assert!(m <= hi, "{row:?}");
        }
    }
}

#[test]
fn check_reports_body_safety_errors_and_exits_nonzero() {
    // A design whose only defect is a PITS body bug: a definite read of
    // an unassigned variable. B040 must gate exactly like graph errors.
    let path = std::env::temp_dir().join("banger_cli_test_badread.bang");
    std::fs::write(
        &path,
        "project badread\n\
         \n\
         machine full:2\n\
         \x20 speed 1\n\
         \x20 process-startup 0.1\n\
         \x20 msg-startup 0.5\n\
         \x20 rate 8\n\
         end\n\
         \n\
         design\n\
         \x20 storage src 1\n\
         \x20 task t 10 prog Bad\n\
         \x20 storage dst 1\n\
         \x20 arc src -> t\n\
         \x20 arc t -> dst\n\
         end\n\
         \n\
         begin-program\n\
         task Bad\n\
         \x20 in src\n\
         \x20 out dst\n\
         \x20 local q\n\
         begin\n\
         \x20 dst := q + src\n\
         end\n\
         end-program\n",
    )
    .unwrap();
    let out = banger()
        .args(["check", path.to_str().unwrap(), "--format", "json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    let parsed = parse_json(text.trim()).expect("valid JSON");
    let Json::Arr(items) = &parsed else {
        panic!("expected a bare array without --weights, got {parsed:?}");
    };
    let b040 = items
        .iter()
        .find(|i| i.get("code").and_then(Json::as_str) == Some("B040"))
        .expect("B040 present");
    assert_eq!(
        b040.get("severity").and_then(Json::as_str),
        Some("error"),
        "{b040:?}"
    );
    // Execution refuses the same design with the same code.
    let run = banger()
        .args(["run", path.to_str().unwrap(), "-i", "src=1"])
        .output()
        .unwrap();
    assert_eq!(run.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&run.stderr).contains("B040"),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    std::fs::remove_file(&path).ok();
}

/// Kills the daemon child on drop so a failing assertion cannot leak a
/// background process into the test runner.
#[cfg(unix)]
struct DaemonGuard(std::process::Child);

#[cfg(unix)]
impl Drop for DaemonGuard {
    fn drop(&mut self) {
        self.0.kill().ok();
        self.0.wait().ok();
    }
}

/// Full child-process round trip: `banger serve` in the background,
/// `banger --connect` clients against it, byte-identical stdout vs
/// local mode, clean shutdown over the protocol.
#[cfg(unix)]
#[test]
fn serve_daemon_round_trip() {
    let sock = std::env::temp_dir().join(format!("banger-cli-serve-{}.sock", std::process::id()));
    std::fs::remove_file(&sock).ok();
    let child = banger()
        .args(["serve", "--socket", sock.to_str().unwrap()])
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("daemon starts");
    let mut guard = DaemonGuard(child);
    // The daemon is up once the socket answers.
    let mut up = false;
    for _ in 0..200 {
        if std::os::unix::net::UnixStream::connect(&sock).is_ok() {
            up = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(up, "daemon never opened {}", sock.display());
    let connect: &[&str] = &["--connect", sock.to_str().unwrap()];

    let ping = banger().args(connect).arg("ping").output().unwrap();
    assert!(ping.status.success());
    assert_eq!(String::from_utf8_lossy(&ping.stdout), "pong\n");

    // check / gantt / run through the daemon == local mode, twice each
    // (second pass exercises the warm caches).
    for args in [
        vec!["check", project_path()],
        vec!["gantt", project_path(), "-H", "ETF"],
        vec!["run", project_path(), "-i", "left=100", "-i", "right=0"],
    ] {
        let local = banger().args(&args).output().unwrap();
        for pass in ["cold", "warm"] {
            let daemon = banger().args(connect).args(&args).output().unwrap();
            assert_eq!(
                daemon.status.code(),
                local.status.code(),
                "{args:?} ({pass}) exit codes differ"
            );
            assert_eq!(
                String::from_utf8_lossy(&daemon.stdout),
                String::from_utf8_lossy(&local.stdout),
                "{args:?} ({pass}) stdout differs"
            );
        }
    }

    // A design with error-severity diagnostics keeps its exit-1 contract.
    let racy = "examples/projects/racy_pipeline.bang";
    let local = banger().args(["check", racy]).output().unwrap();
    let daemon = banger()
        .args(connect)
        .args(["check", racy])
        .output()
        .unwrap();
    assert_eq!(local.status.code(), Some(1));
    assert_eq!(daemon.status.code(), Some(1));
    assert_eq!(
        String::from_utf8_lossy(&daemon.stdout),
        String::from_utf8_lossy(&local.stdout)
    );

    let stats = banger().args(connect).arg("stats").output().unwrap();
    let text = String::from_utf8_lossy(&stats.stdout).into_owned();
    assert!(text.starts_with("requests "), "{text}");
    assert!(text.contains("panics 0"), "{text}");

    let bye = banger().args(connect).arg("shutdown").output().unwrap();
    assert!(bye.status.success());
    let status = guard.0.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit status {status:?}");
    assert!(!sock.exists(), "socket file removed on shutdown");
}

/// Without a daemon, `--connect` falls back to local execution instead
/// of failing.
#[cfg(unix)]
#[test]
fn connect_falls_back_to_local_without_a_daemon() {
    let sock =
        std::env::temp_dir().join(format!("banger-cli-fallback-{}.sock", std::process::id()));
    std::fs::remove_file(&sock).ok();
    let local = run_ok(&["gantt", project_path()]);
    let out = banger()
        .args(["--connect", sock.to_str().unwrap(), "gantt", project_path()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), local);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("running locally"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
