//! R4 integration test: generated Rust programs compile with a bare
//! `rustc` and compute the same answers as the in-process executor.

use banger::figures;
use banger::lu::{lu_inputs, solve_reference, test_system};
use banger_machine::{Machine, MachineParams, Topology};
use std::path::PathBuf;
use std::process::Command;

fn compile_and_run(source: &str, tag: &str) -> String {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    let src_path = dir.join(format!("{tag}.rs"));
    let bin_path = dir.join(format!("{tag}.bin"));
    std::fs::write(&src_path, source).unwrap();
    let status = Command::new("rustc")
        .arg("-O")
        .arg("--edition=2021")
        .arg("-o")
        .arg(&bin_path)
        .arg(&src_path)
        .output()
        .expect("rustc runs");
    assert!(
        status.status.success(),
        "generated {tag} failed to compile:\n{}",
        String::from_utf8_lossy(&status.stderr)
    );
    let out = Command::new(&bin_path).output().expect("binary runs");
    assert!(out.status.success(), "{tag} exited nonzero");
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Parses `output x = [a, b, c]` lines from generated-program stdout.
fn parse_array_output(stdout: &str, var: &str) -> Vec<f64> {
    let line = stdout
        .lines()
        .find(|l| l.starts_with(&format!("output {var} =")))
        .unwrap_or_else(|| panic!("no output line for {var} in:\n{stdout}"));
    let inner = line
        .split_once('[')
        .expect("array form")
        .1
        .trim_end_matches(']');
    inner
        .split(',')
        .map(|s| s.trim().parse().expect("number"))
        .collect()
}

#[test]
fn generated_lu_program_matches_reference() {
    let n = 3;
    let m = Machine::new(Topology::hypercube(2), figures::figure3_params());
    let mut p = figures::lu_project(n, m);
    let schedule = p.schedule("MH").unwrap();
    let (a, b) = test_system(n);
    let source = p.generate_rust(&schedule, &lu_inputs(&a, &b)).unwrap();

    let stdout = compile_and_run(&source, "lu3_mh");
    let got = parse_array_output(&stdout, "x");
    let want = solve_reference(&a, &b);
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < 1e-9, "{got:?} vs {want:?}");
    }
}

#[test]
fn generated_program_follows_different_schedules() {
    // Same design, two schedules (serial vs MH): both generated programs
    // must compute the same answer.
    let n = 3;
    let (a, b) = test_system(n);
    let want = solve_reference(&a, &b);
    for (tag, heuristic, topo) in [
        ("lu3_serial", "serial", Topology::single()),
        ("lu3_etf", "ETF", Topology::fully_connected(4)),
    ] {
        let m = Machine::new(topo, MachineParams::default());
        let mut p = figures::lu_project(n, m);
        let schedule = p.schedule(heuristic).unwrap();
        let source = p.generate_rust(&schedule, &lu_inputs(&a, &b)).unwrap();
        let stdout = compile_and_run(&source, tag);
        let got = parse_array_output(&stdout, "x");
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "{tag}: {got:?} vs {want:?}");
        }
    }
}

#[test]
fn generated_program_with_control_flow_tasks() {
    // Exercise while/if/for translation through a design whose task uses
    // Newton-Raphson (the Figure 4 program) inside the dataflow.
    let mut design = banger_taskgraph::HierGraph::new("roots");
    let sa = design.add_storage("a", 1.0);
    let t1 = design.add_task_with_program("root", 20.0, "SquareRoot");
    let t2 = design.add_task_with_program("scale", 5.0, "Scale");
    let sx = design.add_storage("y", 1.0);
    design.add_flow(sa, t1).unwrap();
    design.add_arc(t1, t2, "x", 1.0).unwrap();
    design.add_flow(t2, sx).unwrap();

    let mut project = banger::project::Project::new("roots", design);
    project
        .library_mut()
        .add_source(figures::SQUARE_ROOT_SRC)
        .unwrap();
    project
        .library_mut()
        .add_source("task Scale in x out y begin if x > 1 then y := x * 10 else y := x end end")
        .unwrap();
    project.set_machine(Machine::new(
        Topology::fully_connected(2),
        MachineParams::default(),
    ));
    let schedule = project.schedule("ETF").unwrap();
    let inputs: std::collections::BTreeMap<String, banger_calc::Value> =
        [("a".to_string(), banger_calc::Value::Num(2.0))]
            .into_iter()
            .collect();
    let source = project.generate_rust(&schedule, &inputs).unwrap();
    let stdout = compile_and_run(&source, "roots_cf");
    let line = stdout
        .lines()
        .find(|l| l.starts_with("output y ="))
        .expect("y printed");
    let y: f64 = line.rsplit('=').next().unwrap().trim().parse().unwrap();
    assert!((y - 10.0 * 2.0_f64.sqrt()).abs() < 1e-9, "{stdout}");
}

#[test]
fn generated_c_is_structurally_complete() {
    // We do not require an MPI toolchain in CI; instead verify the C
    // output is complete: every cross-processor arc has exactly one
    // matching Send/Recv pair with the same tag.
    let n = 4;
    let m = Machine::new(Topology::hypercube(2), figures::figure3_params());
    let mut p = figures::lu_project(n, m);
    let schedule = p.schedule("MH").unwrap();
    let (a, b) = test_system(n);
    let source = p.generate_c(&schedule, &lu_inputs(&a, &b)).unwrap();

    let sends: Vec<&str> = source.lines().filter(|l| l.contains("MPI_Send")).collect();
    let recvs: Vec<&str> = source.lines().filter(|l| l.contains("MPI_Recv")).collect();
    assert_eq!(sends.len(), recvs.len(), "unbalanced send/recv");
    // Tags must pair up.
    let tag_of = |l: &str| -> u32 {
        l.split("/*tag*/")
            .nth(1)
            .unwrap()
            .trim()
            .split(',')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap()
    };
    let mut send_tags: Vec<u32> = sends.iter().map(|l| tag_of(l)).collect();
    let mut recv_tags: Vec<u32> = recvs.iter().map(|l| tag_of(l)).collect();
    send_tags.sort_unstable();
    recv_tags.sort_unstable();
    assert_eq!(send_tags, recv_tags);
    // Balanced braces (catches broken emission).
    let opens = source.matches('{').count();
    let closes = source.matches('}').count();
    assert_eq!(opens, closes);
}
