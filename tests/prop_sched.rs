//! Property tests over the scheduling layer: every heuristic, on random
//! graphs and random machines, must produce schedules that satisfy the
//! three schedule invariants, respect lower bounds, and survive
//! discrete-event replay.

use banger_machine::{Machine, MachineParams, SwitchingMode, Topology};
use banger_sched::bounds;
use banger_taskgraph::{generators, TaskGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_graph() -> impl Strategy<Value = TaskGraph> {
    (any::<u64>(), 1usize..5, 1usize..6, 0.1f64..0.8).prop_map(
        |(seed, layers, width, edge_prob)| {
            let mut rng = StdRng::seed_from_u64(seed);
            generators::random_layered(
                &mut rng,
                &generators::RandomSpec {
                    layers,
                    width,
                    edge_prob,
                    weight: (1.0, 30.0),
                    volume: (0.0, 20.0),
                },
            )
        },
    )
}

fn random_machine() -> impl Strategy<Value = Machine> {
    let topo = prop_oneof![
        (0u32..3).prop_map(Topology::hypercube),
        (1usize..3, 1usize..4).prop_map(|(r, c)| Topology::mesh(r, c)),
        (2usize..6).prop_map(Topology::star),
        (2usize..6).prop_map(Topology::ring),
        (1usize..6).prop_map(Topology::fully_connected),
    ];
    (
        topo,
        0.5f64..4.0,     // processor speed
        0.0f64..2.0,     // process startup
        0.0f64..3.0,     // msg startup
        0.5f64..8.0,     // transmission rate
        prop::bool::ANY, // cut-through?
    )
        .prop_map(|(t, speed, pstart, mstart, rate, cut)| {
            Machine::new(
                t,
                MachineParams {
                    processor_speed: speed,
                    process_startup: pstart,
                    msg_startup: mstart,
                    transmission_rate: rate,
                    switching: if cut {
                        SwitchingMode::CutThrough { hop_latency: 0.2 }
                    } else {
                        SwitchingMode::StoreAndForward
                    },
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_heuristic_is_valid_and_bounded(
        g in random_graph(),
        m in random_machine(),
    ) {
        let lb = bounds::lower_bound(&g, &m);
        let serial = banger_sched::list::serial(&g, &m).makespan();
        for h in banger_sched::HEURISTIC_NAMES.iter().chain(["DSH"].iter()) {
            let s = banger_sched::run_heuristic(h, &g, &m).unwrap();
            // Invariant 1-3 (coverage, exclusivity, precedence+comm).
            if let Err(e) = s.validate(&g, &m) {
                prop_assert!(false, "{h} on {}: {e}", m.topology().name());
            }
            // Lower bound.
            prop_assert!(
                s.makespan() + 1e-6 >= lb,
                "{h}: makespan {} < lower bound {lb}",
                s.makespan()
            );
            // Communication-aware heuristics should stay within 2x serial
            // (near-serial worst case plus comm losses). The deliberately
            // comm-blind `naive` baseline is exempt — being arbitrarily
            // worse is exactly what the A1 ablation demonstrates.
            if *h != "naive" {
                prop_assert!(
                    s.makespan() <= 2.0 * serial + 1e-6,
                    "{h}: makespan {} vs serial {serial}",
                    s.makespan()
                );
            }
        }
    }

    #[test]
    fn schedules_survive_simulation(
        g in random_graph(),
        m in random_machine(),
    ) {
        for h in ["ETF", "MH", "DSH"] {
            let s = banger_sched::run_heuristic(h, &g, &m).unwrap();
            let r = banger_sim::simulate(&g, &m, &s, banger_sim::SimOptions::default())
                .unwrap();
            // The achieved timeline is itself a valid schedule.
            if let Err(e) = r.achieved.validate(&g, &m) {
                prop_assert!(false, "{h}: achieved invalid: {e}");
            }
            // Simulation can beat an analytic prediction slightly (message
            // interleaving differs) but never by more than the total
            // communication the prediction charged.
            prop_assert!(
                r.compare() > 0.4,
                "{h}: achieved {} wildly below predicted {}",
                r.achieved_makespan(),
                s.makespan()
            );
        }
    }

    #[test]
    fn dsh_never_duplicates_when_communication_is_free(
        g in random_graph(),
        speed in 0.5f64..4.0,
    ) {
        // With zero volumes and zero message startup there is nothing for
        // duplication to save, so DSH must not copy anything. (Per-instance
        // dominance over HLFET does NOT hold in general — greedy duplicates
        // can displace later tasks — so we assert the true invariant.)
        let mut g = g;
        g.scale_volumes(0.0);
        let m = Machine::new(
            Topology::fully_connected(4),
            MachineParams {
                processor_speed: speed,
                ..MachineParams::default()
            },
        );
        let d = banger_sched::dsh::dsh(&g, &m);
        prop_assert_eq!(d.placements().len(), g.task_count());
        d.validate(&g, &m).unwrap();
    }

    #[test]
    fn dsh_wins_on_single_source_fanout(
        width in 2usize..8,
        w_src in 1.0f64..5.0,
        w_mid in 5.0f64..20.0,
        volume in 10.0f64..40.0,
    ) {
        // The textbook duplication case: a cheap source fanning heavy
        // messages to independent children. Copying the source is always at
        // least as good as shipping the message.
        let mut g = TaskGraph::new("fan");
        let src = g.add_task("src", w_src);
        for i in 0..width {
            let c = g.add_task(format!("c{i}"), w_mid);
            g.add_edge(src, c, volume, format!("m{i}")).unwrap();
        }
        let m = Machine::new(
            Topology::fully_connected(width),
            MachineParams {
                msg_startup: 1.0,
                ..MachineParams::default()
            },
        );
        let d = banger_sched::dsh::dsh(&g, &m);
        let e = banger_sched::list::etf(&g, &m);
        d.validate(&g, &m).unwrap();
        prop_assert!(
            d.makespan() <= e.makespan() + 1e-6,
            "DSH {} vs ETF {}",
            d.makespan(),
            e.makespan()
        );
    }

    #[test]
    fn single_processor_machines_serialise_exactly(g in random_graph()) {
        let m = Machine::new(Topology::single(), MachineParams::default());
        for h in ["HLFET", "ETF", "MH", "DSH"] {
            let s = banger_sched::run_heuristic(h, &g, &m).unwrap();
            prop_assert!((s.makespan() - g.total_weight()).abs() < 1e-6, "{h}");
        }
    }

    #[test]
    fn zero_comm_machines_reach_work_or_cp_bound_on_wide_graphs(
        seed in any::<u64>(),
        width in 2usize..6,
    ) {
        // Independent tasks on a fully-connected free-comm machine: list
        // schedulers achieve perfect balance within one task's weight.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_layered(
            &mut rng,
            &generators::RandomSpec {
                layers: 1,
                width: width * 3,
                edge_prob: 0.0,
                weight: (5.0, 10.0),
                volume: (0.0, 0.0),
            },
        );
        let m = Machine::new(Topology::fully_connected(width), MachineParams::default());
        let s = banger_sched::list::etf(&g, &m);
        let work_bound = g.total_weight() / width as f64;
        let max_task = g.tasks().map(|(_, t)| t.weight).fold(0.0f64, f64::max);
        prop_assert!(s.makespan() <= work_bound + max_task + 1e-6);
    }
}
