//! Property tests over the graph and machine substrates.

use banger_machine::{ProcId, RoutingTable, Topology};
use banger_taskgraph::{analysis, generators, textfmt, TaskGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random layered DAG described by (seed, layers, width,
/// edge probability).
fn random_graph() -> impl Strategy<Value = TaskGraph> {
    (any::<u64>(), 1usize..6, 1usize..7, 0.05f64..0.9).prop_map(
        |(seed, layers, width, edge_prob)| {
            let mut rng = StdRng::seed_from_u64(seed);
            generators::random_layered(
                &mut rng,
                &generators::RandomSpec {
                    layers,
                    width,
                    edge_prob,
                    weight: (1.0, 50.0),
                    volume: (0.0, 25.0),
                },
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topo_order_is_a_valid_linearisation(g in random_graph()) {
        let order = g.topo_order().unwrap();
        prop_assert_eq!(order.len(), g.task_count());
        let mut pos = vec![usize::MAX; g.task_count()];
        for (i, t) in order.iter().enumerate() {
            pos[t.index()] = i;
        }
        for (_, e) in g.edges() {
            prop_assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn critical_path_bounds_hold(g in random_graph()) {
        let cp = g.critical_path_length();
        let max_w = g.tasks().map(|(_, t)| t.weight).fold(0.0f64, f64::max);
        prop_assert!(cp >= max_w - 1e-9);
        prop_assert!(cp <= g.total_weight() + 1e-9);
        // The reported path's weights sum to the cp length.
        let path = g.critical_path();
        let sum: f64 = path.iter().map(|&t| g.task(t).weight).sum();
        prop_assert!((sum - cp).abs() < 1e-6, "path sum {} vs cp {}", sum, cp);
    }

    #[test]
    fn levels_are_consistent(g in random_graph()) {
        let a = analysis::GraphAnalysis::analyze(&g);
        for t in g.task_ids() {
            let i = t.index();
            // b-level at least the task weight; t-level non-negative.
            prop_assert!(a.b_level[i] + 1e-9 >= g.task(t).weight);
            prop_assert!(a.t_level[i] >= -1e-9);
            // slack non-negative; t+b <= cp.
            prop_assert!(a.alap[i] + 1e-6 >= a.t_level[i]);
            prop_assert!(a.t_level[i] + a.b_level[i] <= a.cp_length + 1e-6);
            // static level <= b level (comm only adds).
            prop_assert!(a.static_level[i] <= a.b_level[i] + 1e-9);
        }
        // Profile sums to the task count.
        let profile = analysis::parallelism_profile(&g);
        prop_assert_eq!(profile.iter().sum::<usize>(), g.task_count());
    }

    #[test]
    fn textfmt_round_trips(g in random_graph()) {
        let text = textfmt::to_text(&g);
        let back = textfmt::from_text(&text).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn packing_preserves_weight_and_dag(g in random_graph()) {
        let p = banger_sched::grain::pack(&g).unwrap();
        prop_assert!((p.packed.total_weight() - g.total_weight()).abs() < 1e-6);
        prop_assert!(p.packed.is_dag());
        prop_assert!(p.packed.task_count() <= g.task_count().max(1));
        // Estimated PT never exceeds the trivial clustering's estimate.
        let trivial: Vec<usize> = (0..g.task_count()).collect();
        let before = banger_sched::grain::estimate_pt(&g, &trivial).unwrap();
        prop_assert!(p.estimated_pt <= before + 1e-6);
        // Cluster ids are dense.
        if !p.cluster_of.is_empty() {
            let max = *p.cluster_of.iter().max().unwrap();
            prop_assert_eq!(max + 1, p.packed.task_count());
        }
    }
}

/// Strategy: one of the supported topology families with small parameters.
fn random_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (0u32..4).prop_map(Topology::hypercube),
        (1usize..4, 1usize..5).prop_map(|(r, c)| Topology::mesh(r, c)),
        (2usize..9).prop_map(Topology::ring),
        (1usize..9).prop_map(Topology::linear),
        (2usize..9).prop_map(Topology::star),
        (2usize..4, 1u32..3).prop_map(|(a, d)| Topology::tree(a, d)),
        (1usize..9).prop_map(Topology::fully_connected),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn routing_paths_are_shortest_and_connected(topo in random_topology()) {
        let r = RoutingTable::build(&topo);
        prop_assert!(topo.is_connected());
        for s in topo.proc_ids() {
            for d in topo.proc_ids() {
                let hops = r.hops(s, d).unwrap();
                let path = r.path(s, d);
                prop_assert_eq!(path.len() as u32, hops + 1);
                prop_assert_eq!(path[0], s);
                prop_assert_eq!(*path.last().unwrap(), d);
                for w in path.windows(2) {
                    prop_assert!(topo.neighbors(w[0]).contains(&w[1]));
                }
                // Symmetry (undirected links).
                prop_assert_eq!(r.hops(d, s), Some(hops));
                // Triangle inequality through any intermediate node.
                for via in topo.proc_ids() {
                    prop_assert!(
                        hops <= r.hops(s, via).unwrap() + r.hops(via, d).unwrap()
                    );
                }
            }
        }
        // Diameter consistency.
        let diam = r.diameter().unwrap();
        let max_pair = topo
            .proc_ids()
            .flat_map(|s| topo.proc_ids().map(move |d| (s, d)))
            .map(|(s, d)| r.hops(s, d).unwrap())
            .max()
            .unwrap_or(0);
        prop_assert_eq!(diam, max_pair);
    }

    #[test]
    fn hypercube_distance_is_hamming(dim in 0u32..5) {
        let t = Topology::hypercube(dim);
        let r = RoutingTable::build(&t);
        for s in 0..t.processors() as u32 {
            for d in 0..t.processors() as u32 {
                prop_assert_eq!(r.hops(ProcId(s), ProcId(d)), Some((s ^ d).count_ones()));
            }
        }
    }
}
