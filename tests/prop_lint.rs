//! Property tests for the static-analysis engine (`banger-analyze`):
//! lint never panics and is deterministic on random hierarchical graphs,
//! and the schedulable seed designs (LU) produce zero error-severity
//! diagnostics.

use banger::lu::lu_program_library;
use banger_analyze::{diagnose, Severity};
use banger_calc::ProgramLibrary;
use banger_taskgraph::{generators, HierGraph};
use proptest::prelude::*;

/// A random flat-ish design driven by a seed: `n` tasks, arcs and storage
/// wired pseudo-randomly — including broken shapes (races, cycles via
/// storage fan-in/out, isolated tasks, zero weights) that the lints are
/// for. The generator intentionally does NOT keep designs clean.
fn random_design(seed: u64, n: usize) -> HierGraph {
    let mut g = HierGraph::new(format!("rand{seed}"));
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let tasks: Vec<_> = (0..n)
        .map(|i| {
            // Mix in zero weights so B032 paths are exercised.
            let w = (next() % 5) as f64;
            g.add_task(format!("t{i}"), w)
        })
        .collect();
    let stores: Vec<_> = (0..n.div_ceil(2))
        .map(|i| g.add_storage(format!("s{i}"), (next() % 8) as f64))
        .collect();
    let arcs = (n * 2).max(4);
    for k in 0..arcs {
        let t = tasks[(next() as usize) % tasks.len()];
        let s = stores[(next() as usize) % stores.len()];
        // Alternate write and read arcs; duplicates and self-loops are
        // rejected by add_arc/add_flow, which is fine — skip them.
        let r = if k % 2 == 0 {
            g.add_flow(t, s)
        } else {
            g.add_flow(s, t)
        };
        let _ = r;
        if next() % 3 == 0 {
            let a = tasks[(next() as usize) % tasks.len()];
            let b = tasks[(next() as usize) % tasks.len()];
            let _ = g.add_arc(a, b, format!("d{k}"), (next() % 4) as f64);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lint engine must never panic, whatever the design looks like,
    /// and must return the same findings for the same inputs.
    #[test]
    fn lint_is_total_and_deterministic(seed in 0u64..1_000_000, n in 2usize..12) {
        let g = random_design(seed, n);
        let lib = ProgramLibrary::new();
        let d1 = diagnose(&g, &lib);
        let d2 = diagnose(&g, &lib);
        prop_assert_eq!(d1, d2);
    }

    /// Clean two-level compound designs stay clean: no error-severity
    /// findings on the grouped shapes the flatten property tests use.
    #[test]
    fn grouped_designs_have_no_errors(groups in 1usize..5, chain_len in 1usize..4) {
        let mut top = HierGraph::new("grouped");
        let src = top.add_storage("input", 4.0);
        let sink = top.add_task("sink", 1.0);
        let out = top.add_storage("output", 1.0);
        top.add_flow(sink, out).unwrap();
        for gi in 0..groups {
            let mut inner = HierGraph::new(format!("G{gi}"));
            let mut prev = None;
            let mut first = None;
            for ci in 0..chain_len {
                let t = inner.add_task(format!("t{ci}"), (ci + 1) as f64);
                if let Some(p) = prev {
                    inner.add_arc(p, t, format!("c{ci}"), 2.0).unwrap();
                } else {
                    first = Some(t);
                }
                prev = Some(t);
            }
            let c = top.add_compound(format!("G{gi}"), inner);
            top.bind_input(c, "input", first.unwrap()).unwrap();
            top.bind_output(c, format!("r{gi}"), prev.unwrap()).unwrap();
            top.add_arc(src, c, "input", 4.0).unwrap();
            top.add_arc(c, sink, format!("r{gi}"), 1.0).unwrap();
        }
        let diags = diagnose(&top, &ProgramLibrary::new());
        prop_assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "unexpected errors: {:?}",
            diags
        );
    }

    /// The LU seed design (with its real program library) is schedulable
    /// and must lint with zero error-severity diagnostics at every size.
    #[test]
    fn lu_seed_design_has_no_errors(n in 2usize..9) {
        let design = generators::lu_hierarchical(n);
        let lib = lu_program_library(n);
        let diags = diagnose(&design, &lib);
        prop_assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "LU-{n} produced errors: {:?}",
            diags
        );
    }
}

/// Diagnostics must also be stable across the hierarchical seed designs
/// (not just flat random ones): run twice and compare.
#[test]
fn lu_diagnostics_are_deterministic() {
    for n in [2, 4, 6] {
        let design = generators::lu_hierarchical(n);
        let lib = lu_program_library(n);
        assert_eq!(diagnose(&design, &lib), diagnose(&design, &lib));
    }
}
