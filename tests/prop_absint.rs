//! Differential soundness suite for the abstract interpreter: on
//! generated programs, any execution that completes cleanly under the
//! reference interpreter must be *predicted possible* by the static
//! analysis — no error-severity B04x diagnostic may fire, the measured
//! operation count must lie within the inferred `[ops_lo, ops_hi]`
//! bounds, and an `exact` claim must match the trial count to the tick.
//!
//! The generator is the same adversarial shape as `prop_vm`: seeded
//! scalars and arrays, one never-assigned variable (`q`), guaranteed
//! error leaves (`wat(..)`, `sqrt(x, y)`), out-of-range indexing, and
//! loops — programs that *fail* at runtime are exactly the ones the
//! analysis is allowed to flag as errors, so the property filters on a
//! clean run first. Warnings are always allowed: the analyzer may be
//! unsure, never wrong.

use banger_analyze::{program_diagnostics, Severity};
use banger_calc::ast::{BinOp, Expr, Program, Stmt, UnOp};
use banger_calc::error::Pos;
use banger_calc::{absint, interp, InterpConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

const SCALARS: [&str; 4] = ["a", "b", "c", "d"];
const ARRAYS: [&str; 2] = ["v", "w"];

fn pos() -> Pos {
    Pos { line: 1, col: 1 }
}

/// Random expressions over seeded scalars, arrays, indexing, builtins,
/// and a sprinkling of guaranteed-error leaves (same grammar family as
/// `prop_vm`, plus domain-edge builtins the B042 detector watches).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        6 => (0i32..100).prop_map(|v| Expr::Num(v as f64)),
        6 => (0usize..SCALARS.len()).prop_map(|i| Expr::Var(SCALARS[i].to_string())),
        2 => (0usize..ARRAYS.len()).prop_map(|i| Expr::Var(ARRAYS[i].to_string())),
        // A variable nothing ever assigns: B040 vs runtime Undefined.
        1 => Just(Expr::Var("q".to_string())),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            8 => (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| {
                Expr::Bin(op, Box::new(l), Box::new(r))
            }),
            2 => inner.clone().prop_map(|e| Expr::Un(UnOp::Neg, Box::new(e))),
            2 => inner.clone().prop_map(|e| Expr::Un(UnOp::Not, Box::new(e))),
            // Indexing with arbitrary (possibly out-of-range) indices:
            // B041 vs runtime IndexOutOfRange.
            3 => ((0usize..ARRAYS.len()), inner.clone()).prop_map(|(i, e)| {
                Expr::Index(ARRAYS[i].to_string(), Box::new(e))
            }),
            2 => inner.clone().prop_map(|e| Expr::Call("abs".to_string(), vec![e])),
            2 => (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Expr::Call("max".to_string(), vec![x, y])),
            // Domain-edge builtins: B042 must stay warning-severity
            // because the interpreter completes with NaN/inf.
            1 => inner.clone().prop_map(|e| Expr::Call("sqrt".to_string(), vec![e])),
            1 => inner.clone().prop_map(|e| Expr::Call("ln".to_string(), vec![e])),
            1 => (0usize..ARRAYS.len())
                .prop_map(|i| Expr::Call("len".to_string(), vec![Expr::Var(ARRAYS[i].into())])),
            1 => (0usize..ARRAYS.len())
                .prop_map(|i| Expr::Call("sum".to_string(), vec![Expr::Var(ARRAYS[i].into())])),
            // Guaranteed failures, fatal only if control flow reaches them.
            1 => inner.clone().prop_map(|e| Expr::Call("wat".to_string(), vec![e])),
            1 => (inner.clone(), inner)
                .prop_map(|(x, y)| Expr::Call("sqrt".to_string(), vec![x, y])),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Pow),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn assign(var: &str, expr: Expr) -> Stmt {
    Stmt::Assign {
        var: var.to_string(),
        expr,
        pos: pos(),
    }
}

/// Statements: scalar and array-element assignment, conditionals,
/// bounded `for` loops, counted-down `while` loops, and prints.
fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let scalar_assign =
        ((0usize..SCALARS.len()), arb_expr()).prop_map(|(i, e)| assign(SCALARS[i], e));
    let index_assign = ((0usize..ARRAYS.len()), arb_expr(), arb_expr()).prop_map(|(i, idx, e)| {
        Stmt::AssignIndex {
            var: ARRAYS[i].to_string(),
            index: idx,
            expr: e,
            pos: pos(),
        }
    });
    let print = arb_expr().prop_map(|e| Stmt::Print {
        expr: e,
        pos: pos(),
    });
    let ifstmt = (arb_expr(), arb_expr(), arb_expr()).prop_map(|(c, e1, e2)| Stmt::If {
        cond: c,
        then_body: vec![assign("a", e1)],
        else_body: vec![assign("b", e2)],
        pos: pos(),
    });
    let forstmt = (arb_expr(), (0i32..6), arb_expr()).prop_map(|(from, n, e)| Stmt::For {
        var: "i".to_string(),
        from,
        to: Expr::Num(n as f64),
        body: vec![assign("c", e)],
        pos: pos(),
    });
    // `t := n; while t > 0 do t := t - 1; <stmt> end` — always terminates
    // (modulo errors in the body).
    let whilestmt = ((1i32..5), arb_expr()).prop_map(|(n, e)| {
        let dec = assign(
            "t",
            Expr::Bin(
                BinOp::Sub,
                Box::new(Expr::Var("t".into())),
                Box::new(Expr::Num(1.0)),
            ),
        );
        let w = Stmt::While {
            cond: Expr::Bin(
                BinOp::Gt,
                Box::new(Expr::Var("t".into())),
                Box::new(Expr::Num(0.0)),
            ),
            body: vec![dec, assign("d", e)],
            pos: pos(),
        };
        // Wrap in an always-true `if` so one Strategy item carries both
        // the counter seed and the loop.
        Stmt::If {
            cond: Expr::Num(1.0),
            then_body: vec![assign("t", Expr::Num(n as f64)), w],
            else_body: vec![],
            pos: pos(),
        }
    });
    prop_oneof![
        5 => scalar_assign,
        3 => index_assign,
        1 => print,
        2 => ifstmt,
        2 => forstmt,
        2 => whilestmt,
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_stmt(), 1..10).prop_map(|body| {
        // Seed scalars and arrays so most reads succeed; `q` stays
        // undefined and the error leaves stay reachable.
        let mut full: Vec<Stmt> = SCALARS
            .iter()
            .enumerate()
            .map(|(i, v)| assign(v, Expr::Num(i as f64 + 1.0)))
            .collect();
        full.push(assign(
            "v",
            Expr::Call("zeros".to_string(), vec![Expr::Num(5.0)]),
        ));
        full.push(assign(
            "w",
            Expr::Call("fill".to_string(), vec![Expr::Num(3.0), Expr::Num(2.5)]),
        ));
        full.extend(body);
        Program {
            name: "Rand".to_string(),
            inputs: vec![],
            outputs: SCALARS
                .iter()
                .chain(ARRAYS.iter())
                .map(|v| v.to_string())
                .collect(),
            locals: vec![],
            body: full,
            decl_pos: Default::default(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Soundness: a clean run refutes every *definite* static claim. If
    /// the reference interpreter completes within budget, the analysis
    /// must not have reported an error-severity diagnostic, the measured
    /// ops must lie within the static bounds, and `exact` bounds must hit
    /// the count exactly.
    #[test]
    fn clean_runs_refute_static_errors_and_land_in_bounds(p in arb_program()) {
        let inputs = BTreeMap::new();
        let cfg = InterpConfig::default();
        if let Ok(outcome) = interp::run_with(&p, &inputs, cfg) {
            let diags = program_diagnostics(&p);
            let errors: Vec<_> = diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            prop_assert!(
                errors.is_empty(),
                "clean run but static errors {errors:?} on:\n{}",
                banger_calc::pretty::print_program(&p)
            );
            let cost = absint::analyze(&p).cost;
            let ops = outcome.ops as f64;
            prop_assert!(
                cost.ops_lo <= ops && (cost.ops_hi.is_infinite() || ops <= cost.ops_hi),
                "measured {ops} outside [{}, {}] on:\n{}",
                cost.ops_lo,
                cost.ops_hi,
                banger_calc::pretty::print_program(&p)
            );
            if cost.exact {
                prop_assert_eq!(
                    ops,
                    cost.ops_lo,
                    "exact claim missed the trial count on:\n{}",
                    banger_calc::pretty::print_program(&p)
                );
            }
        }
    }

    /// The analysis is deterministic: findings and cost are identical
    /// across repeated runs, so cached diagnostics never go stale against
    /// a re-analysis of the same program.
    #[test]
    fn analysis_is_deterministic(p in arb_program()) {
        let a1 = absint::analyze(&p);
        let a2 = absint::analyze(&p);
        prop_assert_eq!(format!("{:?}", a1.findings), format!("{:?}", a2.findings));
        prop_assert_eq!(format!("{:?}", a1.cost), format!("{:?}", a2.cost));
    }
}
