//! Executor error-path integration tests at scale.
//!
//! A worker panic must surface as an attributed [`ExecError::WorkerPanic`]
//! naming the offending task — never crash the test process, never hang
//! the coordinator, and never leave the run deadlocked with work
//! outstanding — in every dispatch mode (inline, greedy pool, pinned).
//! The panics are injected with the `ExecOptions::inject_panic` test hook
//! so the fault fires inside a worker thread's task body, exactly where a
//! buggy PITS builtin or a poisoned lock would.

use banger_calc::{ProgramLibrary, Value};
use banger_exec::{execute, ExecError, ExecMode, ExecOptions, Session, DEFAULT_INLINE_BELOW};
use banger_machine::{Machine, MachineParams, Topology};
use banger_taskgraph::hierarchy::{Flattened, HierGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Random layered design where task `t{l}_{w}` computes `1 + sum(inputs)`,
/// gathered into a `result` port (same shape as `tests/exec_stress.rs`).
fn build(seed: u64, layers: usize, width: usize) -> (Flattened, ProgramLibrary, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = HierGraph::new("errs");
    let mut lib = ProgramLibrary::new();
    let mut prev: Vec<(banger_taskgraph::HierNodeId, String)> = Vec::new();
    let mut values: BTreeMap<String, f64> = BTreeMap::new();

    for l in 0..layers {
        let mut cur = Vec::with_capacity(width);
        for w in 0..width {
            let out_var = format!("o{l}_{w}");
            let node = h.add_task_with_program(format!("t{l}_{w}"), 1.0, format!("P{l}_{w}"));
            let mut ins: Vec<String> = Vec::new();
            if l > 0 {
                for (pn, pv) in &prev {
                    if rng.gen_bool(0.4) || (ins.is_empty() && *pn == prev.last().unwrap().0) {
                        h.add_arc(*pn, node, pv.clone(), 1.0).unwrap();
                        ins.push(pv.clone());
                    }
                }
            }
            let body_sum = if ins.is_empty() {
                String::from("1")
            } else {
                format!("1 + {}", ins.join(" + "))
            };
            lib.add_source(&format!(
                "task P{l}_{w} {} out {out_var} begin {out_var} := {body_sum} end",
                if ins.is_empty() {
                    String::new()
                } else {
                    format!("in {}", ins.join(", "))
                },
            ))
            .unwrap();
            let v = 1.0 + ins.iter().map(|i| values[i]).sum::<f64>();
            values.insert(out_var.clone(), v);
            cur.push((node, out_var));
        }
        prev = cur;
    }

    let gather = h.add_task_with_program("gather", 1.0, "Gather");
    let sink = h.add_storage("result", 1.0);
    h.add_flow(gather, sink).unwrap();
    let mut ins = Vec::new();
    for (pn, pv) in &prev {
        h.add_arc(*pn, gather, pv.clone(), 1.0).unwrap();
        ins.push(pv.clone());
    }
    lib.add_source(&format!(
        "task Gather in {} out result begin result := {} end",
        ins.join(", "),
        ins.join(" + ")
    ))
    .unwrap();
    let expected: f64 = ins.iter().map(|i| values[i]).sum();

    (h.flatten().unwrap(), lib, expected)
}

fn all_modes(design: &Flattened) -> Vec<(&'static str, ExecMode)> {
    let m = Machine::new(Topology::fully_connected(4), MachineParams::default());
    let pinned = banger_sched::list::etf(&design.graph, &m);
    vec![
        ("inline", ExecMode::Greedy { workers: 1 }),
        ("greedy-4", ExecMode::Greedy { workers: 4 }),
        ("greedy-8", ExecMode::Greedy { workers: 8 }),
        ("pinned", ExecMode::pinned(pinned)),
    ]
}

#[test]
fn injected_panic_is_attributed_in_every_mode() {
    let (design, lib, _) = build(3, 6, 8);
    // A mid-graph task: predecessors have completed, successors are
    // still outstanding when the panic fires.
    let victim = "t3_4";
    for (label, mode) in all_modes(&design) {
        let err = execute(
            &design,
            &lib,
            &BTreeMap::new(),
            &ExecOptions {
                mode,
                inject_panic: Some(victim.to_string()),
                ..ExecOptions::default()
            },
        )
        .expect_err("injected panic must fail the run");
        match err {
            ExecError::WorkerPanic { task, message } => {
                assert_eq!(task, victim, "mode {label}");
                assert!(
                    message.contains("injected fault"),
                    "mode {label}: panic payload lost: {message}"
                );
            }
            other => panic!("mode {label}: expected WorkerPanic, got {other}"),
        }
    }
}

#[test]
fn panic_with_outstanding_fan_out_never_crashes_or_hangs() {
    // Panic the very first task of a wide graph: everything else is
    // outstanding, so the coordinator must unwind dozens of queued and
    // in-flight tasks without its old `expect("workers alive")` crash.
    for seed in 0..10u64 {
        let (design, lib, _) = build(seed, 4, 16);
        for workers in [2usize, 4, 8] {
            let err = execute(
                &design,
                &lib,
                &BTreeMap::new(),
                &ExecOptions {
                    mode: ExecMode::Greedy { workers },
                    inject_panic: Some("t0_0".to_string()),
                    ..ExecOptions::default()
                },
            )
            .expect_err("injected panic must fail the run");
            assert!(
                matches!(
                    err,
                    ExecError::WorkerPanic { .. } | ExecError::WorkerLost(_)
                ),
                "seed {seed} workers {workers}: unexpected error {err}"
            );
        }
    }
}

#[test]
fn runtime_error_is_attributed_not_panicked() {
    // A genuine PITS runtime error (out-of-range index) inside a large
    // run must come back as ExecError::Run naming the task, through the
    // same poisoned-store unwind as a panic.
    let mut h = HierGraph::new("bad-index");
    let mut lib = ProgramLibrary::new();
    let ok = h.add_task_with_program("fine", 1.0, "Fine");
    let bad = h.add_task_with_program("oops", 1.0, "Oops");
    h.add_arc(ok, bad, "v", 4.0).unwrap();
    lib.add_source("task Fine out v begin v := fill(4, 1) end")
        .unwrap();
    lib.add_source("task Oops in v out r begin r := v[99] end")
        .unwrap();
    let design = h.flatten().unwrap();

    for (label, mode) in all_modes(&design) {
        let err = execute(
            &design,
            &lib,
            &BTreeMap::new(),
            &ExecOptions {
                mode,
                ..ExecOptions::default()
            },
        )
        .expect_err("out-of-range index must fail the run");
        match err {
            ExecError::Run { task, .. } => assert_eq!(task, "oops", "mode {label}"),
            other => panic!("mode {label}: expected Run error, got {other}"),
        }
    }
}

#[test]
fn executor_recovers_after_a_failed_run() {
    // The same design executes correctly right after a panicked run:
    // no global state (thread-locals, poisoned locks) leaks across runs.
    let (design, lib, expected) = build(21, 5, 8);
    for workers in [1usize, 4] {
        let opts = ExecOptions {
            mode: ExecMode::Greedy { workers },
            inject_panic: Some("t2_3".to_string()),
            ..ExecOptions::default()
        };
        execute(&design, &lib, &BTreeMap::new(), &opts).expect_err("injected panic");
        let clean = ExecOptions {
            mode: ExecMode::Greedy { workers },
            ..ExecOptions::default()
        };
        let report = execute(&design, &lib, &BTreeMap::new(), &clean)
            .unwrap_or_else(|e| panic!("workers={workers}: clean rerun failed: {e}"));
        assert_eq!(report.outputs["result"], Value::Num(expected));
    }
}

/// Work-stealing dispatch thresholds: `inline_below: 0.0` forces every
/// task (all weight 1.0 here) through the stealable Chase–Lev deques;
/// the default threshold routes them through each worker's private
/// inline stack instead. Fault paths must behave identically on both.
fn ws_thresholds() -> [(&'static str, f64); 2] {
    [("deque", 0.0), ("inline-stack", DEFAULT_INLINE_BELOW)]
}

#[test]
fn injected_panic_is_attributed_under_forced_stealing() {
    // Same contract as `injected_panic_is_attributed_in_every_mode`, but
    // with inlining disabled so the victim task travels the deque/steal
    // path — the panic unwinds inside whichever worker stole it, and the
    // attribution must still name the task, not the thief.
    let (design, lib, _) = build(3, 6, 8);
    let victim = "t3_4";
    for (label, inline_below) in ws_thresholds() {
        for workers in [2usize, 4, 8] {
            let err = execute(
                &design,
                &lib,
                &BTreeMap::new(),
                &ExecOptions {
                    mode: ExecMode::Greedy { workers },
                    inline_below,
                    inject_panic: Some(victim.to_string()),
                    ..ExecOptions::default()
                },
            )
            .expect_err("injected panic must fail the run");
            match err {
                ExecError::WorkerPanic { task, message } => {
                    assert_eq!(task, victim, "{label} workers={workers}");
                    assert!(
                        message.contains("injected fault"),
                        "{label} workers={workers}: panic payload lost: {message}"
                    );
                }
                other => panic!("{label} workers={workers}: expected WorkerPanic, got {other}"),
            }
        }
    }
}

#[test]
fn worker_death_with_stolen_work_in_flight_is_worker_lost_never_a_hang() {
    // Killing a worker thread outright mid-run — while other workers
    // still hold work stolen from its deque — must surface as
    // ExecError::WorkerLost, not deadlock the remaining workers at the
    // end-of-run rendezvous. The test completing at all is the no-hang
    // assertion.
    for seed in 0..6u64 {
        let (design, lib, _) = build(seed, 4, 12);
        for (label, inline_below) in ws_thresholds() {
            for workers in [2usize, 4, 8] {
                let err = execute(
                    &design,
                    &lib,
                    &BTreeMap::new(),
                    &ExecOptions {
                        mode: ExecMode::Greedy { workers },
                        inline_below,
                        inject_worker_death: Some("t1_1".to_string()),
                        ..ExecOptions::default()
                    },
                )
                .expect_err("dead worker must fail the run");
                assert!(
                    matches!(err, ExecError::WorkerLost(_)),
                    "{label} seed {seed} workers {workers}: expected WorkerLost, got {err}"
                );
            }
        }
    }
}

#[test]
fn session_surfaces_faults_per_firing_and_stays_usable() {
    // A persistent Session built with a fault injected fails every
    // firing with the attributed error — the poisoned store and leftover
    // deque items from one firing must not wedge or corrupt the next —
    // and a clean session over the same design still computes the
    // expected result afterwards.
    let (design, lib, expected) = build(21, 5, 8);
    for (label, inline_below) in ws_thresholds() {
        let mut faulty = Session::new(
            &design,
            &lib,
            &ExecOptions {
                mode: ExecMode::Greedy { workers: 4 },
                inline_below,
                inject_panic: Some("t2_3".to_string()),
                ..ExecOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{label}: session open failed: {e}"));
        for firing in 0..2 {
            let err = faulty
                .run(&BTreeMap::new())
                .expect_err("injected panic must fail every firing");
            match err {
                ExecError::WorkerPanic { task, .. } => {
                    assert_eq!(task, "t2_3", "{label} firing {firing}")
                }
                other => panic!("{label} firing {firing}: expected WorkerPanic, got {other}"),
            }
        }
        drop(faulty);

        let mut clean = Session::new(
            &design,
            &lib,
            &ExecOptions {
                mode: ExecMode::Greedy { workers: 4 },
                inline_below,
                ..ExecOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{label}: clean session open failed: {e}"));
        for firing in 0..2 {
            let report = clean
                .run(&BTreeMap::new())
                .unwrap_or_else(|e| panic!("{label} firing {firing}: clean firing failed: {e}"));
            assert_eq!(report.outputs["result"], Value::Num(expected));
        }
    }
}
