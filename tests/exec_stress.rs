//! Executor stress: a few hundred auto-generated tasks with real dataflow,
//! run across worker counts and dispatch modes, checked against a
//! sequential reference evaluation. Exercises the dependence-counting
//! dispatcher, the results store, and value passing under contention.

use banger_calc::{ProgramLibrary, Value};
use banger_exec::{execute, ExecMode, ExecOptions};
use banger_machine::{Machine, MachineParams, Topology};
use banger_taskgraph::hierarchy::{Flattened, HierGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Builds a random layered design where task `t` computes
/// `o_t = 1 + sum(inputs)`, plus a final gather into the `result` port.
/// Returns the design and the expected final value.
fn build(seed: u64, layers: usize, width: usize) -> (Flattened, ProgramLibrary, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = HierGraph::new("stress");
    let mut lib = ProgramLibrary::new();
    let mut prev: Vec<(banger_taskgraph::HierNodeId, String)> = Vec::new();
    let mut values: BTreeMap<String, f64> = BTreeMap::new();

    for l in 0..layers {
        let mut cur = Vec::with_capacity(width);
        for w in 0..width {
            let out_var = format!("o{l}_{w}");
            let node = h.add_task_with_program(format!("t{l}_{w}"), 1.0, format!("P{l}_{w}"));
            // Wire to a random subset of the previous layer.
            let mut ins: Vec<String> = Vec::new();
            if l > 0 {
                for (pn, pv) in &prev {
                    if rng.gen_bool(0.4) || (ins.is_empty() && *pn == prev.last().unwrap().0) {
                        h.add_arc(*pn, node, pv.clone(), 1.0).unwrap();
                        ins.push(pv.clone());
                    }
                }
            }
            let body_sum = if ins.is_empty() {
                String::from("1")
            } else {
                format!("1 + {}", ins.join(" + "))
            };
            lib.add_source(&format!(
                "task P{l}_{w} {} out {out_var} begin {out_var} := {body_sum} end",
                if ins.is_empty() {
                    String::new()
                } else {
                    format!("in {}", ins.join(", "))
                },
            ))
            .unwrap();
            // Reference value.
            let v = 1.0 + ins.iter().map(|i| values[i]).sum::<f64>();
            values.insert(out_var.clone(), v);
            cur.push((node, out_var));
        }
        prev = cur;
    }

    // Gather the last layer into the output port.
    let gather = h.add_task_with_program("gather", 1.0, "Gather");
    let sink = h.add_storage("result", 1.0);
    h.add_flow(gather, sink).unwrap();
    let mut ins = Vec::new();
    for (pn, pv) in &prev {
        h.add_arc(*pn, gather, pv.clone(), 1.0).unwrap();
        ins.push(pv.clone());
    }
    lib.add_source(&format!(
        "task Gather in {} out result begin result := {} end",
        ins.join(", "),
        ins.join(" + ")
    ))
    .unwrap();
    let expected: f64 = ins.iter().map(|i| values[i]).sum();

    (h.flatten().unwrap(), lib, expected)
}

#[test]
fn hundreds_of_tasks_all_worker_counts() {
    let (design, lib, expected) = build(7, 12, 16); // 193 tasks
    assert!(design.graph.task_count() > 150);
    for workers in [1usize, 2, 4, 8] {
        let report = execute(
            &design,
            &lib,
            &BTreeMap::new(),
            &ExecOptions {
                mode: ExecMode::Greedy { workers },
                ..ExecOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("workers={workers}: {e}"));
        assert_eq!(
            report.outputs["result"],
            Value::Num(expected),
            "workers={workers}"
        );
        assert_eq!(report.runs.len(), design.graph.task_count());
        // Task timing must respect dataflow: every run starts after all of
        // its predecessors' finishes.
        let mut finish = vec![std::time::Duration::ZERO; design.graph.task_count()];
        for r in &report.runs {
            finish[r.task.index()] = r.finish;
        }
        for r in &report.runs {
            for p in design.graph.predecessors(r.task) {
                assert!(
                    finish[p.index()] <= r.start,
                    "workers={workers}: task {} started before its input {}",
                    r.task,
                    p
                );
            }
        }
    }
}

#[test]
fn pinned_stress_matches_greedy() {
    let (design, lib, expected) = build(11, 8, 12);
    let m = Machine::new(Topology::fully_connected(6), MachineParams::default());
    let s = banger_sched::list::etf(&design.graph, &m);
    let report = execute(
        &design,
        &lib,
        &BTreeMap::new(),
        &ExecOptions {
            mode: ExecMode::pinned(s),
            ..ExecOptions::default()
        },
    )
    .unwrap();
    assert_eq!(report.outputs["result"], Value::Num(expected));
}

#[test]
fn poisoning_under_load_stops_quickly() {
    // Inject a failing task in the middle of a large design; execution must
    // return the error, not hang or panic.
    let (design, mut lib, _) = build(13, 10, 12);
    // Sabotage one mid-layer program.
    let victim = design
        .graph
        .tasks()
        .find(|(_, t)| t.name == "t5_3")
        .map(|(_, t)| t.program.clone().unwrap())
        .expect("task exists");
    lib.add_source(&format!("task {victim} out zzz begin zzz := nodefined end"))
        .unwrap();
    let err = execute(
        &design,
        &lib,
        &BTreeMap::new(),
        &ExecOptions {
            mode: ExecMode::Greedy { workers: 8 },
            ..ExecOptions::default()
        },
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("nodefined") || msg.contains("t5_3") || msg.contains("input"),
        "unexpected error: {msg}"
    );
}
