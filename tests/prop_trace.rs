//! Tracing transparency property suite.
//!
//! Turning [`ExecOptions::trace`] on must be *observationally free*: a
//! traced run's outputs, prints, and measured task weights are
//! byte-identical to the same run untraced, in every dispatch mode.
//! The recorded trace itself must be internally consistent — one span
//! per task run, workers within range, nested-interval-free spans per
//! worker, and summary counters that reconcile with the report.

use banger_calc::ProgramLibrary;
use banger_exec::{execute, ExecMode, ExecOptions, ExecReport, Session, DEFAULT_INLINE_BELOW};
use banger_machine::{Machine, MachineParams, Topology};
use banger_taskgraph::hierarchy::{Flattened, HierGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Random layered design mixing scalar sums with array traffic (the
/// `fill`/index-write tasks force CoW copies so the trace's byte
/// counters see real work). Task `t{l}_{w}` computes `1 + sum(inputs)`.
fn build(seed: u64, layers: usize, width: usize) -> (Flattened, ProgramLibrary) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = HierGraph::new("traced");
    let mut lib = ProgramLibrary::new();
    let mut prev: Vec<(banger_taskgraph::HierNodeId, String)> = Vec::new();

    for l in 0..layers {
        let mut cur = Vec::with_capacity(width);
        for w in 0..width {
            let out_var = format!("o{l}_{w}");
            let node = h.add_task_with_program(format!("t{l}_{w}"), 1.0, format!("P{l}_{w}"));
            let mut ins: Vec<String> = Vec::new();
            if l > 0 {
                for (pn, pv) in &prev {
                    if rng.gen_bool(0.5) || (ins.is_empty() && *pn == prev.last().unwrap().0) {
                        h.add_arc(*pn, node, pv.clone(), 1.0).unwrap();
                        ins.push(pv.clone());
                    }
                }
            }
            // Sources push an array through an index write, forcing a
            // CoW unshare on every downstream aliased read; interior
            // tasks read the first element of each (array) input.
            let stmt = if ins.is_empty() {
                format!("{out_var} := fill(8, {}) {out_var}[1] := 2", l + w + 1)
            } else {
                format!("{out_var} := fill(4, 1 + {}[1])", ins.join("[1] + "))
            };
            lib.add_source(&format!(
                "task P{l}_{w} {} out {out_var} begin {stmt} end",
                if ins.is_empty() {
                    String::new()
                } else {
                    format!("in {}", ins.join(", "))
                },
            ))
            .unwrap();
            cur.push((node, out_var));
        }
        prev = cur;
    }

    let gather = h.add_task_with_program("gather", 1.0, "Gather");
    let sink = h.add_storage("result", 1.0);
    h.add_flow(gather, sink).unwrap();
    let mut ins = Vec::new();
    for (pn, pv) in &prev {
        h.add_arc(*pn, gather, pv.clone(), 1.0).unwrap();
        ins.push(pv.clone());
    }
    lib.add_source(&format!(
        "task Gather in {} out result begin result := {} end",
        ins.join(", "),
        ins.join("[1] + ") + "[1]"
    ))
    .unwrap();

    (h.flatten().unwrap(), lib)
}

fn run(
    design: &Flattened,
    lib: &ProgramLibrary,
    mode: ExecMode,
    inline_below: f64,
    trace: bool,
) -> ExecReport {
    execute(
        design,
        lib,
        &BTreeMap::new(),
        &ExecOptions {
            mode,
            inline_below,
            trace,
            ..ExecOptions::default()
        },
    )
    .expect("run succeeds")
}

/// Dispatch variants: greedy with the default inline threshold (these
/// weight-1.0 tasks all run on the private inline stack), greedy with
/// inlining disabled (every task travels the stealable deque path), and
/// the pinned schedule (which ignores the threshold).
fn modes(design: &Flattened, workers: usize) -> Vec<(ExecMode, f64)> {
    let m = Machine::new(Topology::fully_connected(workers), MachineParams::default());
    vec![
        (ExecMode::Greedy { workers }, DEFAULT_INLINE_BELOW),
        (ExecMode::Greedy { workers }, 0.0),
        (
            ExecMode::pinned(banger_sched::list::etf(&design.graph, &m)),
            DEFAULT_INLINE_BELOW,
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn traced_runs_are_observationally_identical(
        seed in 0u64..500,
        layers in 2usize..5,
        width in 1usize..5,
        workers in 1usize..5,
    ) {
        let (design, lib) = build(seed, layers, width);
        let n = design.graph.task_count();
        for (mode, inline_below) in modes(&design, workers) {
            let plain = run(&design, &lib, mode.clone(), inline_below, false);
            let traced = run(&design, &lib, mode.clone(), inline_below, true);

            // The observable contract: byte-identical outputs, prints,
            // and measured weights.
            prop_assert_eq!(
                format!("{:?}", plain.outputs),
                format!("{:?}", traced.outputs)
            );
            prop_assert_eq!(&plain.prints, &traced.prints);
            prop_assert_eq!(plain.measured_weights(n), traced.measured_weights(n));
            prop_assert!(plain.trace.is_none());

            // Trace self-consistency.
            let trace = traced.trace.as_ref().expect("traced run records events");
            let spans = trace.spans();
            prop_assert_eq!(spans.len(), traced.runs.len());
            for sp in &spans {
                prop_assert!(sp.worker < trace.workers);
                prop_assert!(sp.start <= sp.finish);
            }
            let summary = trace.summary();
            prop_assert_eq!(summary.tasks, traced.runs.len());
            prop_assert_eq!(summary.errors, 0);
            prop_assert_eq!(
                summary.ops,
                traced.runs.iter().map(|r| r.ops).sum::<u64>()
            );
            // Dispatch counters reconcile with the threshold: with
            // inlining disabled every task is deque-dispatched; with the
            // default threshold these weight-1.0 tasks never leave the
            // private inline stacks, so nothing is there to steal.
            // (`workers: 1` takes the sequential fast path, which has no
            // deques and records no dispatch counters at all.)
            if matches!(mode, ExecMode::Greedy { .. }) && workers >= 2 {
                if inline_below == 0.0 {
                    prop_assert_eq!(summary.inline_tasks, 0);
                } else {
                    prop_assert_eq!(summary.inline_tasks as usize, summary.tasks);
                    prop_assert_eq!(summary.steals, 0);
                }
            }
            prop_assert!((summary.inline_tasks as usize) <= summary.tasks);
            // The observed schedule replays every span onto its worker.
            let observed = trace.observed_schedule(n);
            prop_assert_eq!(observed.placements().len(), spans.len());
        }
    }

    #[test]
    fn traced_session_firings_are_observationally_identical(
        seed in 0u64..200,
        layers in 2usize..4,
        width in 1usize..4,
        workers in 2usize..5,
    ) {
        // Tracing must stay observationally free under the persistent
        // executor too, where worker threads, deques, and the slab store
        // survive across firings.
        let (design, lib) = build(seed, layers, width);
        let n = design.graph.task_count();
        for inline_below in [DEFAULT_INLINE_BELOW, 0.0] {
            let opts = |trace| ExecOptions {
                mode: ExecMode::Greedy { workers },
                inline_below,
                trace,
                ..ExecOptions::default()
            };
            let mut plain = Session::new(&design, &lib, &opts(false)).unwrap();
            let mut traced = Session::new(&design, &lib, &opts(true)).unwrap();
            for _ in 0..3 {
                let p = plain.run(&BTreeMap::new()).unwrap();
                let t = traced.run(&BTreeMap::new()).unwrap();
                prop_assert_eq!(format!("{:?}", p.outputs), format!("{:?}", t.outputs));
                prop_assert_eq!(&p.prints, &t.prints);
                prop_assert_eq!(p.measured_weights(n), t.measured_weights(n));
                prop_assert!(p.trace.is_none());

                let trace = t.trace.as_ref().expect("traced firing records events");
                let spans = trace.spans();
                prop_assert_eq!(spans.len(), t.runs.len());
                for sp in &spans {
                    prop_assert!(sp.worker < trace.workers);
                }
                let summary = trace.summary();
                prop_assert_eq!(summary.tasks, t.runs.len());
                prop_assert_eq!(summary.errors, 0);
                if inline_below == 0.0 {
                    prop_assert_eq!(summary.inline_tasks, 0);
                } else {
                    prop_assert_eq!(summary.inline_tasks as usize, summary.tasks);
                }
            }
        }
    }
}
