//! Failure injection: take valid schedules, corrupt them in every way the
//! validator claims to detect, and check each corruption is caught with
//! the right error. Also checks benign transformations still validate —
//! the validator must be exactly as strict as the invariants.

use banger_machine::{Machine, MachineParams, ProcId, Topology};
use banger_sched::{Schedule, ScheduleError};
use banger_taskgraph::{generators, TaskGraph};

fn setup() -> (TaskGraph, Machine, Schedule) {
    let g = generators::gauss_elimination(5, 3.0, 2.0);
    let m = Machine::new(
        Topology::hypercube(2),
        MachineParams {
            msg_startup: 0.5,
            process_startup: 0.2,
            ..MachineParams::default()
        },
    );
    let s = banger_sched::mh::mh(&g, &m);
    s.validate(&g, &m).expect("baseline is valid");
    (g, m, s)
}

/// Rebuilds a schedule applying `f` to each placement.
fn map_schedule(
    s: &Schedule,
    mut f: impl FnMut(usize, &banger_sched::Placement) -> Option<banger_sched::Placement>,
) -> Schedule {
    let mut out = Schedule::new(s.heuristic().to_string(), s.task_count());
    for (i, p) in s.placements().iter().enumerate() {
        if let Some(q) = f(i, p) {
            out.place(q.task, q.proc, q.start, q.finish, q.primary);
        }
    }
    out
}

#[test]
fn dropping_a_task_is_caught() {
    let (g, m, s) = setup();
    let victim = s.placements()[3].task;
    let mutated = map_schedule(&s, |_, p| (p.task != victim).then_some(*p));
    assert_eq!(
        mutated.validate(&g, &m),
        Err(ScheduleError::Unplaced(victim))
    );
}

#[test]
fn starting_before_inputs_is_caught() {
    let (g, m, s) = setup();
    // Pick a task with predecessors and pull its start to zero.
    let victim = g
        .task_ids()
        .find(|&t| g.in_degree(t) > 0)
        .expect("gauss has dependent tasks");
    let mutated = map_schedule(&s, |_, p| {
        if p.task == victim {
            let dur = p.finish - p.start;
            Some(banger_sched::Placement {
                start: 0.0,
                finish: dur,
                ..*p
            })
        } else {
            Some(*p)
        }
    });
    match mutated.validate(&g, &m) {
        Err(ScheduleError::PrecedenceViolated { task, .. }) => assert_eq!(task, victim),
        Err(ScheduleError::Overlap { .. }) => {} // may trip overlap first
        other => panic!("expected violation, got {other:?}"),
    }
}

#[test]
fn overlapping_same_processor_is_caught() {
    let (g, m, s) = setup();
    // Find a processor with two placements and slide the second into the
    // first (keeping duration).
    let proc = m
        .proc_ids()
        .find(|&p| s.on_processor(p).len() >= 2)
        .expect("some processor runs two tasks");
    let second = *s.on_processor(proc)[1];
    let first = *s.on_processor(proc)[0];
    let mutated = map_schedule(&s, |_, p| {
        if p.task == second.task && p.proc == proc && p.start == second.start {
            let dur = p.finish - p.start;
            let new_start = first.start + 1e-3;
            Some(banger_sched::Placement {
                start: new_start,
                finish: new_start + dur,
                ..*p
            })
        } else {
            Some(*p)
        }
    });
    match mutated.validate(&g, &m) {
        Err(ScheduleError::Overlap { proc: p, .. }) => assert_eq!(p, proc),
        Err(ScheduleError::PrecedenceViolated { .. }) => {} // moving can trip this first
        other => panic!("expected overlap, got {other:?}"),
    }
}

#[test]
fn wrong_duration_is_caught() {
    let (g, m, s) = setup();
    let victim = s.placements()[0];
    let mutated = map_schedule(&s, |i, p| {
        if i == 0 {
            Some(banger_sched::Placement {
                finish: p.finish + 0.5,
                ..*p
            })
        } else {
            Some(*p)
        }
    });
    match mutated.validate(&g, &m) {
        Err(ScheduleError::WrongDuration { task, .. }) => assert_eq!(task, victim.task),
        Err(ScheduleError::Overlap { .. }) => {}
        other => panic!("expected duration error, got {other:?}"),
    }
}

#[test]
fn unknown_processor_is_caught() {
    let (g, m, s) = setup();
    let mutated = map_schedule(&s, |i, p| {
        Some(if i == 0 {
            banger_sched::Placement {
                proc: ProcId(99),
                ..*p
            }
        } else {
            *p
        })
    });
    assert_eq!(
        mutated.validate(&g, &m),
        Err(ScheduleError::UnknownProcessor(ProcId(99)))
    );
}

#[test]
fn negative_time_is_caught() {
    let (g, m, s) = setup();
    let mutated = map_schedule(&s, |i, p| {
        Some(if i == 0 {
            banger_sched::Placement {
                start: -1.0,
                finish: p.finish - p.start - 1.0,
                ..*p
            }
        } else {
            *p
        })
    });
    assert!(matches!(
        mutated.validate(&g, &m),
        Err(ScheduleError::BadTimes(_))
    ));
}

#[test]
fn demoting_the_primary_is_caught() {
    let (g, m, s) = setup();
    let victim = s.placements()[0].task;
    let mutated = map_schedule(&s, |_, p| {
        Some(if p.task == victim {
            banger_sched::Placement {
                primary: false,
                ..*p
            }
        } else {
            *p
        })
    });
    assert_eq!(
        mutated.validate(&g, &m),
        Err(ScheduleError::BadPrimary(victim))
    );
}

#[test]
fn uniform_time_shift_stays_valid() {
    let (g, m, s) = setup();
    let shifted = map_schedule(&s, |_, p| {
        Some(banger_sched::Placement {
            start: p.start + 10.0,
            finish: p.finish + 10.0,
            ..*p
        })
    });
    shifted
        .validate(&g, &m)
        .expect("uniform shift preserves all invariants");
    assert_eq!(shifted.makespan(), s.makespan() + 10.0);
}

#[test]
fn slack_stretch_stays_valid() {
    // Delaying only the very last task (by finish time) can never violate
    // precedence and cannot overlap anything after it.
    let (g, m, s) = setup();
    let last = s
        .placements()
        .iter()
        .max_by(|a, b| a.finish.total_cmp(&b.finish))
        .copied()
        .unwrap();
    let stretched = map_schedule(&s, |_, p| {
        Some(if p.task == last.task && p.start == last.start {
            banger_sched::Placement {
                start: p.start + 5.0,
                finish: p.finish + 5.0,
                ..*p
            }
        } else {
            *p
        })
    });
    stretched
        .validate(&g, &m)
        .expect("stretching the tail is benign");
}

#[test]
fn every_heuristic_rejects_tampering() {
    // Sweep: for each heuristic's schedule, deleting any single placement
    // must always be caught (either as unplaced or broken primary).
    let g = generators::fork_join(4, 2.0, 6.0, 2.0, 3.0);
    let m = Machine::new(Topology::fully_connected(4), MachineParams::default());
    for h in banger_sched::HEURISTIC_NAMES.iter().chain(["DSH"].iter()) {
        let s = banger_sched::run_heuristic(h, &g, &m).unwrap();
        for skip in 0..s.placements().len() {
            if !s.placements()[skip].primary {
                // Deleting a redundant duplicate copy can be legitimately
                // harmless; only primaries are load-bearing by contract.
                continue;
            }
            let mutated = map_schedule(&s, |i, p| (i != skip).then_some(*p));
            assert!(
                mutated.validate(&g, &m).is_err(),
                "{h}: deleting placement {skip} went unnoticed"
            );
        }
    }
}
