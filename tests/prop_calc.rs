//! Property tests over the PITS calculator language: printer/parser
//! round-trips on randomly generated ASTs, interpreter numerics, and
//! executor/codegen agreement on random straight-line programs.

use banger_calc::ast::{BinOp, Expr, Program, Stmt, UnOp};
use banger_calc::error::Pos;
use banger_calc::{interp, parser, pretty, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

const VARS: [&str; 4] = ["a", "b", "c", "d"];

/// Random expression trees over variables `a..d` and safe builtins.
fn arb_expr() -> impl Strategy<Value = Expr> {
    // Literals are non-negative: the language has no negative literals
    // (negation is a unary operator), so `Num(-1)` would not round-trip
    // structurally even though it evaluates identically.
    let leaf = prop_oneof![
        (0i32..100).prop_map(|v| Expr::Num(v as f64)),
        (0usize..VARS.len()).prop_map(|i| Expr::Var(VARS[i].to_string())),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| Expr::Bin(
                op,
                Box::new(l),
                Box::new(r)
            )),
            inner.clone().prop_map(|e| Expr::Un(UnOp::Neg, Box::new(e))),
            inner.clone().prop_map(|e| Expr::Un(UnOp::Not, Box::new(e))),
            inner
                .clone()
                .prop_map(|e| Expr::Call("abs".to_string(), vec![e])),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Call("max".to_string(), vec![a, b])),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Pow),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

/// Random straight-line statements assigning expressions to variables.
fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let assign = ((0usize..VARS.len()), arb_expr()).prop_map(|(i, e)| Stmt::Assign {
        var: VARS[i].to_string(),
        expr: e,
        pos: Pos { line: 1, col: 1 },
    });
    let print = arb_expr().prop_map(|e| Stmt::Print {
        expr: e,
        pos: Pos { line: 1, col: 1 },
    });
    let ifstmt = (
        arb_expr(),
        (0usize..VARS.len()),
        arb_expr(),
        (0usize..VARS.len()),
        arb_expr(),
    )
        .prop_map(|(c, i1, e1, i2, e2)| Stmt::If {
            cond: c,
            then_body: vec![Stmt::Assign {
                var: VARS[i1].to_string(),
                expr: e1,
                pos: Pos { line: 1, col: 1 },
            }],
            else_body: vec![Stmt::Assign {
                var: VARS[i2].to_string(),
                expr: e2,
                pos: Pos { line: 1, col: 1 },
            }],
            pos: Pos { line: 1, col: 1 },
        });
    prop_oneof![4 => assign, 1 => print, 1 => ifstmt]
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_stmt(), 1..8).prop_map(|body| {
        // Seed every variable so reads never hit "undefined".
        let mut full: Vec<Stmt> = VARS
            .iter()
            .enumerate()
            .map(|(i, v)| Stmt::Assign {
                var: v.to_string(),
                expr: Expr::Num(i as f64 + 1.0),
                pos: Pos { line: 1, col: 1 },
            })
            .collect();
        full.extend(body);
        Program {
            name: "Rand".to_string(),
            inputs: vec![],
            outputs: VARS.iter().map(|v| v.to_string()).collect(),
            locals: vec![],
            body: full,
            decl_pos: Default::default(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_print_parse_round_trip(e in arb_expr()) {
        let printed = pretty::print_expr(&e);
        let parsed = parser::parse_expr(&printed)
            .unwrap_or_else(|err| panic!("{printed}: {err}"));
        prop_assert_eq!(parsed, e, "printed: {}", printed);
    }

    #[test]
    fn program_print_parse_round_trip(p in arb_program()) {
        let printed = pretty::print_program(&p);
        let parsed = parser::parse_program(&printed)
            .unwrap_or_else(|err| panic!("{printed}: {err}"));
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn interpreter_is_deterministic(p in arb_program()) {
        let r1 = interp::run(&p, &BTreeMap::new());
        let r2 = interp::run(&p, &BTreeMap::new());
        // Compare via Debug so NaN results (e.g. from 0/0) compare equal.
        prop_assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    }

    #[test]
    fn printed_program_computes_identically(p in arb_program()) {
        // parse(print(p)) must not just be structurally equal — it must
        // *run* identically.
        let printed = pretty::print_program(&p);
        let reparsed = parser::parse_program(&printed).unwrap();
        let r1 = interp::run(&p, &BTreeMap::new());
        let r2 = interp::run(&reparsed, &BTreeMap::new());
        match (r1, r2) {
            (Ok(a), Ok(b)) => {
                for v in VARS {
                    let (x, y) = (&a.outputs[v], &b.outputs[v]);
                    match (x, y) {
                        (Value::Num(x), Value::Num(y)) => {
                            prop_assert!(
                                (x == y) || (x.is_nan() && y.is_nan()),
                                "{v}: {x} vs {y}"
                            );
                        }
                        _ => prop_assert_eq!(x, y),
                    }
                }
            }
            (a, b) => prop_assert_eq!(a, b),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn newton_raphson_matches_f64_sqrt(a in 1e-6f64..1e12) {
        let prog = parser::parse_program(banger::figures::SQUARE_ROOT_SRC).unwrap();
        let out = interp::run(
            &prog,
            &[("a".to_string(), Value::Num(a))].into_iter().collect(),
        )
        .unwrap();
        let x = out.outputs["x"].as_num("x").unwrap();
        let rel = (x - a.sqrt()).abs() / a.sqrt().max(1e-12);
        prop_assert!(rel < 1e-9, "sqrt({a}): {x} vs {}", a.sqrt());
    }

    #[test]
    fn sum_program_matches_iterator(v in prop::collection::vec(-1e6f64..1e6, 0..64)) {
        let prog = parser::parse_program(
            "task Sum in v out s begin s := sum(v) end",
        )
        .unwrap();
        let out = interp::run(
            &prog,
            &[("v".to_string(), Value::array(v.clone()))].into_iter().collect(),
        )
        .unwrap();
        let s = out.outputs["s"].as_num("s").unwrap();
        let want: f64 = v.iter().sum();
        prop_assert!((s - want).abs() <= 1e-6 * (1.0 + want.abs()));
    }

    #[test]
    fn static_cost_is_finite_and_positive(p in arb_program()) {
        let cost = banger_calc::cost::estimate_program(&p);
        prop_assert!(cost.is_finite());
        prop_assert!(cost > 0.0);
    }
}
