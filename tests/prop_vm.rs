//! Differential property suite: the compiled register VM and the
//! tree-walking reference interpreter must be observationally identical
//! on generated programs — same `Outcome` (outputs, prints, and the ops
//! count the scheduler consumes as a measured task weight), same errors,
//! and `StepLimit` at exactly the same budget.
//!
//! The generator deliberately produces programs that *fail* — undefined
//! variables, arrays where scalars belong, out-of-range indices, unknown
//! functions, wrong arities — because error identity (variant, payload,
//! and the moment it fires relative to the step budget) is part of the
//! contract. Comparison goes through `Debug` formatting so `NaN`
//! results (e.g. `0 / 0`) compare equal.

use banger_calc::ast::{BinOp, Expr, Program, Stmt, UnOp};
use banger_calc::error::Pos;
use banger_calc::{compile, interp, vm, InterpConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

const SCALARS: [&str; 4] = ["a", "b", "c", "d"];
const ARRAYS: [&str; 2] = ["v", "w"];

fn pos() -> Pos {
    Pos { line: 1, col: 1 }
}

/// Step budgets to differentiate at. The tiny ones make `StepLimit`
/// fire mid-expression, mid-loop, and mid-call — any divergence in tick
/// placement between the engines shows up as a budget where one engine
/// errors and the other completes.
const BUDGETS: [u64; 6] = [3, 7, 23, 101, 997, 50_000];

/// Random expressions over seeded scalars, arrays, indexing, builtins,
/// and a sprinkling of guaranteed-error leaves.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        6 => (0i32..100).prop_map(|v| Expr::Num(v as f64)),
        6 => (0usize..SCALARS.len()).prop_map(|i| Expr::Var(SCALARS[i].to_string())),
        // Arrays read as bare variables: legal as values, type errors
        // inside arithmetic — both paths must agree.
        2 => (0usize..ARRAYS.len()).prop_map(|i| Expr::Var(ARRAYS[i].to_string())),
        // A variable nothing ever assigns: Undefined parity.
        1 => Just(Expr::Var("q".to_string())),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            8 => (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| {
                Expr::Bin(op, Box::new(l), Box::new(r))
            }),
            2 => inner.clone().prop_map(|e| Expr::Un(UnOp::Neg, Box::new(e))),
            2 => inner.clone().prop_map(|e| Expr::Un(UnOp::Not, Box::new(e))),
            // Indexing with arbitrary (possibly out-of-range) indices.
            3 => ((0usize..ARRAYS.len()), inner.clone()).prop_map(|(i, e)| {
                Expr::Index(ARRAYS[i].to_string(), Box::new(e))
            }),
            2 => inner.clone().prop_map(|e| Expr::Call("abs".to_string(), vec![e])),
            2 => (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Expr::Call("max".to_string(), vec![x, y])),
            1 => (0usize..ARRAYS.len())
                .prop_map(|i| Expr::Call("len".to_string(), vec![Expr::Var(ARRAYS[i].into())])),
            1 => (0usize..ARRAYS.len())
                .prop_map(|i| Expr::Call("sum".to_string(), vec![Expr::Var(ARRAYS[i].into())])),
            // Guaranteed compile-time-resolvable failures, only fatal if
            // control flow actually reaches them.
            1 => inner.clone().prop_map(|e| Expr::Call("wat".to_string(), vec![e])),
            1 => (inner.clone(), inner)
                .prop_map(|(x, y)| Expr::Call("sqrt".to_string(), vec![x, y])),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Pow),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn assign(var: &str, expr: Expr) -> Stmt {
    Stmt::Assign {
        var: var.to_string(),
        expr,
        pos: pos(),
    }
}

/// Statements: scalar and array-element assignment, conditionals,
/// bounded `for` loops, counted-down `while` loops, and prints.
fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let scalar_assign =
        ((0usize..SCALARS.len()), arb_expr()).prop_map(|(i, e)| assign(SCALARS[i], e));
    let index_assign = ((0usize..ARRAYS.len()), arb_expr(), arb_expr()).prop_map(|(i, idx, e)| {
        Stmt::AssignIndex {
            var: ARRAYS[i].to_string(),
            index: idx,
            expr: e,
            pos: pos(),
        }
    });
    let print = arb_expr().prop_map(|e| Stmt::Print {
        expr: e,
        pos: pos(),
    });
    let ifstmt = (arb_expr(), arb_expr(), arb_expr()).prop_map(|(c, e1, e2)| Stmt::If {
        cond: c,
        then_body: vec![assign("a", e1)],
        else_body: vec![assign("b", e2)],
        pos: pos(),
    });
    let forstmt = (arb_expr(), (0i32..6), arb_expr()).prop_map(|(from, n, e)| Stmt::For {
        var: "i".to_string(),
        from,
        to: Expr::Num(n as f64),
        body: vec![assign("c", e)],
        pos: pos(),
    });
    // `t := n; while t > 0 do t := t - 1; <stmt> end` — always terminates
    // (modulo errors in the body), exercising the while-loop tick path.
    let whilestmt = ((1i32..5), arb_expr()).prop_map(|(n, e)| {
        let dec = assign(
            "t",
            Expr::Bin(
                BinOp::Sub,
                Box::new(Expr::Var("t".into())),
                Box::new(Expr::Num(1.0)),
            ),
        );
        Stmt::While {
            cond: Expr::Bin(
                BinOp::Gt,
                Box::new(Expr::Var("t".into())),
                Box::new(Expr::Num(0.0)),
            ),
            body: vec![dec, assign("d", e)],
            pos: pos(),
        }
        .precede_with(assign("t", Expr::Num(n as f64)))
    });
    prop_oneof![
        5 => scalar_assign,
        3 => index_assign,
        1 => print,
        2 => ifstmt,
        2 => forstmt,
        2 => whilestmt,
    ]
}

/// Helper letting the while generator seed its counter first.
trait Precede {
    fn precede_with(self, first: Stmt) -> Stmt;
}

impl Precede for Stmt {
    fn precede_with(self, first: Stmt) -> Stmt {
        // Wrap in an always-true `if` so one Strategy item can carry two
        // statements.
        Stmt::If {
            cond: Expr::Num(1.0),
            then_body: vec![first, self],
            else_body: vec![],
            pos: pos(),
        }
    }
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_stmt(), 1..10).prop_map(|body| {
        // Seed scalars and arrays so most reads succeed; `q` stays
        // undefined and the error leaves stay reachable.
        let mut full: Vec<Stmt> = SCALARS
            .iter()
            .enumerate()
            .map(|(i, v)| assign(v, Expr::Num(i as f64 + 1.0)))
            .collect();
        full.push(assign(
            "v",
            Expr::Call("zeros".to_string(), vec![Expr::Num(5.0)]),
        ));
        full.push(assign(
            "w",
            Expr::Call("fill".to_string(), vec![Expr::Num(3.0), Expr::Num(2.5)]),
        ));
        full.extend(body);
        Program {
            name: "Rand".to_string(),
            inputs: vec![],
            outputs: SCALARS
                .iter()
                .chain(ARRAYS.iter())
                .map(|v| v.to_string())
                .collect(),
            locals: vec![],
            body: full,
            decl_pos: Default::default(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The one property that matters: at every budget, both engines
    /// produce the same `Result<Outcome, RunError>` — ops byte-for-byte
    /// equal on success, identical error variant and payload on failure.
    #[test]
    fn vm_and_tree_walker_are_observationally_identical(p in arb_program()) {
        let compiled = compile(&p);
        let mut machine = vm::Vm::new();
        let inputs = BTreeMap::new();
        for max_steps in BUDGETS {
            let cfg = InterpConfig { max_steps, ..Default::default() };
            let want = interp::run_with(&p, &inputs, cfg);
            let got = machine.run(&compiled, &inputs, cfg);
            // Debug formatting lets NaN outputs compare equal while still
            // covering outputs, prints, ops, and error payloads exactly.
            prop_assert_eq!(
                format!("{got:?}"),
                format!("{want:?}"),
                "engines diverged at max_steps={} on:\n{}",
                max_steps,
                banger_calc::pretty::print_program(&p)
            );
        }
    }

    /// Recompiling is deterministic: two compiles of the same program
    /// produce the same bytecode, so cached `Arc<CompiledProgram>`s are
    /// interchangeable with fresh compiles.
    #[test]
    fn compilation_is_deterministic(p in arb_program()) {
        let c1 = compile(&p);
        let c2 = compile(&p);
        prop_assert_eq!(c1.ops, c2.ops);
        prop_assert_eq!(c1.frame_size, c2.frame_size);
        prop_assert_eq!(c1.var_names, c2.var_names);
    }

    /// A reused frame never leaks state between runs: running the same
    /// program twice on one `Vm` gives identical outcomes.
    #[test]
    fn frame_reuse_is_invisible(p in arb_program()) {
        let compiled = compile(&p);
        let mut machine = vm::Vm::new();
        let inputs = BTreeMap::new();
        let cfg = InterpConfig::default();
        let first = machine.run(&compiled, &inputs, cfg);
        let second = machine.run(&compiled, &inputs, cfg);
        prop_assert_eq!(format!("{first:?}"), format!("{second:?}"));
    }
}
