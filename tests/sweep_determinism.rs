//! Determinism regression: the parallel sweep layer must return exactly —
//! bit-identically — what the sequential path returns, on the paper's LU
//! design and on random proptest graphs. Results are collected by input
//! index, never by completion order, so thread interleaving can never
//! reorder or alter a table the non-programmer is watching.

use banger_env::core::chart::SpeedupPoint;
use banger_env::core::Project;
use banger_machine::{Machine, MachineParams, Topology};
use banger_sched::sweep;
use banger_taskgraph::{generators, TaskGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn figure3_topologies() -> Vec<Topology> {
    (0..=4u32).map(Topology::hypercube).collect()
}

fn figure3_params() -> MachineParams {
    MachineParams {
        msg_startup: 0.2,
        transmission_rate: 8.0,
        ..MachineParams::default()
    }
}

/// The sequential reference for `Project::predict_speedup`: the exact loop
/// the project ran before the sweep layer existed.
fn sequential_speedup(g: &TaskGraph, topologies: &[Topology]) -> Vec<SpeedupPoint> {
    topologies
        .iter()
        .map(|topo| {
            let m = Machine::new(topo.clone(), figure3_params());
            let s = banger_sched::mh::mh(g, &m);
            SpeedupPoint {
                processors: m.processors(),
                speedup: s.speedup(g, &m),
            }
        })
        .collect()
}

#[test]
fn lu_speedup_points_bit_identical() {
    let mut p = Project::new("lu4", generators::lu_hierarchical(4));
    p.set_machine(Machine::new(Topology::hypercube(2), figure3_params()));
    let topologies = figure3_topologies();
    let parallel = p.predict_speedup(&topologies, figure3_params()).unwrap();
    let g = p.flatten().unwrap().graph.clone();
    let sequential = sequential_speedup(&g, &topologies);
    assert_eq!(parallel, sequential);
    // Stable across repeated invocations too.
    assert_eq!(
        parallel,
        p.predict_speedup(&topologies, figure3_params()).unwrap()
    );
}

#[test]
fn lu_heuristic_comparison_ordering_bit_identical() {
    let mut p = Project::new("lu4", generators::lu_hierarchical(4));
    p.set_machine(Machine::new(Topology::hypercube(2), figure3_params()));
    let rows = p.compare_heuristics().unwrap();
    let g = p.flatten().unwrap().graph.clone();
    let m = p.machine().unwrap().clone();
    // Sequential reference: the pre-sweep loop, summarised and sorted the
    // same way.
    let mut want: Vec<_> = banger_sched::HEURISTIC_NAMES
        .iter()
        .chain(["DSH"].iter())
        .map(|name| {
            banger_sched::run_heuristic(name, &g, &m)
                .unwrap()
                .summarize(&g, &m)
        })
        .collect();
    want.sort_by(|a, b| a.makespan.total_cmp(&b.makespan));
    assert_eq!(rows, want);
}

fn random_graph() -> impl Strategy<Value = TaskGraph> {
    (any::<u64>(), 1usize..5, 1usize..6, 0.1f64..0.8).prop_map(
        |(seed, layers, width, edge_prob)| {
            let mut rng = StdRng::seed_from_u64(seed);
            generators::random_layered(
                &mut rng,
                &generators::RandomSpec {
                    layers,
                    width,
                    edge_prob,
                    weight: (1.0, 30.0),
                    volume: (0.0, 20.0),
                },
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sweep_machines_matches_sequential_on_random_graphs(g in random_graph()) {
        let machines: Vec<Machine> = [
            Topology::single(),
            Topology::hypercube(1),
            Topology::hypercube(2),
            Topology::mesh(2, 3),
            Topology::ring(5),
        ]
        .into_iter()
        .map(|t| Machine::new(t, MachineParams { msg_startup: 0.5, ..MachineParams::default() }))
        .collect();
        let par = sweep::sweep_machines("MH", &g, &machines).unwrap();
        for (m, s) in machines.iter().zip(&par) {
            let seq = banger_sched::mh::mh(&g, m);
            prop_assert_eq!(s, &seq);
        }
    }

    #[test]
    fn sweep_heuristics_matches_sequential_on_random_graphs(g in random_graph()) {
        let m = Machine::new(
            Topology::hypercube(2),
            MachineParams { msg_startup: 0.5, ..MachineParams::default() },
        );
        let names: Vec<&str> = banger_sched::HEURISTIC_NAMES
            .iter()
            .chain(["DSH"].iter())
            .copied()
            .collect();
        let par = sweep::sweep_heuristics(&names, &g, &m);
        for (name, s) in names.iter().zip(&par) {
            let seq = banger_sched::run_heuristic(name, &g, &m);
            prop_assert_eq!(s, &seq);
        }
    }
}
