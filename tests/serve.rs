//! Integration tests for the `banger serve` daemon: concurrent
//! clients, cache invalidation on rewrite, and panic containment.
#![cfg(unix)]

use banger::serve::{Client, Request, Server};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A tiny self-contained design: r = a, through one task.
const SMALL: &str = "\
project serve-test

machine single
  speed 1
  process-startup 0
  msg-startup 0
  rate 1
end

design
  storage a 1
  task t1 1 prog Id
  storage r 1
  arc a -> t1
  arc t1 -> r
end

begin-program
task Id
  in a
  out r
begin
  r := a
end
end-program
";

fn temp_path(name: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "banger-serve-it-{}-{name}.{ext}",
        std::process::id()
    ))
}

fn lu3() -> String {
    std::fs::read_to_string("examples/projects/lu3.bang").expect("lu3 example exists")
}

/// Starts an in-process daemon; returns (socket path, server handle).
/// The caller sends `shutdown` (or sets the flag) and joins.
fn start_server(name: &str) -> (PathBuf, Arc<Server>, std::thread::JoinHandle<()>) {
    let sock = temp_path(name, "sock");
    std::fs::remove_file(&sock).ok();
    let server = Arc::new(Server::bind(&sock).expect("bind"));
    let handle = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve().expect("serve"))
    };
    // Wait until the listener accepts.
    for _ in 0..100 {
        if Client::connect(&sock).is_ok() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    (sock, server, handle)
}

fn shutdown(sock: &Path, handle: std::thread::JoinHandle<()>) {
    let mut c = Client::connect(sock).expect("connect for shutdown");
    c.request(&Request::new("shutdown")).expect("shutdown");
    handle.join().expect("server thread");
}

/// N threads fire mixed check/schedule/run requests; every response
/// must be byte-identical to a fresh, daemon-independent local
/// computation of the same answer.
#[test]
fn concurrent_clients_get_fresh_local_answers() {
    let lu3_src = lu3();
    let lu3_path = temp_path("stress-lu3", "bang");
    std::fs::write(&lu3_path, &lu3_src).unwrap();
    let small_path = temp_path("stress-small", "bang");
    std::fs::write(&small_path, SMALL).unwrap();

    // Expected answers, computed through the library directly (no
    // daemon, no serve-side cache) — the ground truth a fresh local
    // `banger` invocation would print.
    let expected_check = {
        let mut p = banger::parse_project(&lu3_src).unwrap();
        format!("{}\n", banger::analyze::render_report(p.diagnose()))
    };
    let expected_sched = {
        let mut p = banger::parse_project(&lu3_src).unwrap();
        let s = p.schedule("ETF").unwrap();
        let gantt = p.gantt(&s).unwrap();
        let f = p.flatten().unwrap();
        let g = f.graph.clone();
        let m = p.machine().unwrap();
        format!(
            "{gantt}\nmakespan {:.3}, speedup {:.2}x, efficiency {:.0}%, {} of {} processors used\n",
            s.makespan(),
            s.speedup(&g, m),
            100.0 * s.efficiency(&g, m),
            s.processors_used(),
            m.processors()
        )
    };
    let expected_run = {
        let mut p = banger::parse_project(SMALL).unwrap();
        let mut inputs = std::collections::BTreeMap::new();
        inputs.insert("a".to_string(), banger_calc::Value::Num(7.5));
        let report = p.run(&inputs).unwrap();
        let mut out = String::new();
        for (task, line) in &report.prints {
            out.push_str(&format!("[{task}] {line}\n"));
        }
        for (var, value) in &report.outputs {
            out.push_str(&format!("{var} = {value}\n"));
        }
        out
    };

    let (sock, server, handle) = start_server("stress");
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let sock = sock.clone();
            let lu3_path = lu3_path.clone();
            let small_path = small_path.clone();
            let expected_check = expected_check.clone();
            let expected_sched = expected_sched.clone();
            let expected_run = expected_run.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&sock).expect("connect");
                for i in 0..6 {
                    match (t + i) % 3 {
                        0 => {
                            let req = Request::for_path("check", lu3_path.to_str().unwrap());
                            let resp = client.request(&req).unwrap();
                            assert!(resp.ok, "{}", resp.error);
                            assert_eq!(resp.output, expected_check);
                        }
                        1 => {
                            let mut req = Request::for_path("schedule", lu3_path.to_str().unwrap());
                            req.heuristic = "ETF".into();
                            let resp = client.request(&req).unwrap();
                            assert!(resp.ok, "{}", resp.error);
                            assert_eq!(resp.output, expected_sched);
                        }
                        _ => {
                            let mut req = Request::for_path("run", small_path.to_str().unwrap());
                            req.inputs.insert("a".into(), banger_calc::Value::Num(7.5));
                            let resp = client.request(&req).unwrap();
                            assert!(resp.ok, "{}", resp.error);
                            assert_eq!(resp.output, expected_run);
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let stats = server.store().stats();
    assert_eq!(stats.requests, 48, "8 threads x 6 requests");
    assert_eq!(stats.panics, 0);
    assert!(stats.hits >= 40, "warm entries dominate: {stats:?}");
    shutdown(&sock, handle);
    std::fs::remove_file(&lu3_path).ok();
    std::fs::remove_file(&small_path).ok();
}

/// Rewriting the `.bang` file between requests must discard every warm
/// cache derived from the old bytes.
#[test]
fn rewrite_between_requests_invalidates_the_cache() {
    let path = temp_path("invalidate", "bang");
    std::fs::write(&path, SMALL).unwrap();
    let (sock, server, handle) = start_server("invalidate");
    let mut client = Client::connect(&sock).expect("connect");

    let req = Request::for_path("schedule", path.to_str().unwrap());
    let v1_cold = client.request(&req).unwrap();
    assert!(v1_cold.ok, "{}", v1_cold.error);
    assert!(!v1_cold.cached);
    let v1_warm = client.request(&req).unwrap();
    assert!(v1_warm.cached, "same bytes -> warm schedule");
    assert_eq!(v1_cold.output, v1_warm.output);

    // Rewrite: double the task weight. Same path, different bytes.
    std::fs::write(&path, SMALL.replace("task t1 1", "task t1 2")).unwrap();
    let v2 = client.request(&req).unwrap();
    assert!(v2.ok, "{}", v2.error);
    assert!(!v2.cached, "hash change must force a cold rebuild");
    assert_ne!(v1_cold.output, v2.output, "new weight changes the chart");
    assert_eq!(server.store().stats().rebuilds, 1);

    // And the new bytes are warm from now on.
    let v2_warm = client.request(&req).unwrap();
    assert!(v2_warm.cached);
    assert_eq!(v2.output, v2_warm.output);

    shutdown(&sock, handle);
    std::fs::remove_file(&path).ok();
}

/// A panicking request handler must not kill the daemon: the client
/// gets a structured error, the entry is poisoned-and-rebuilt, and the
/// next request succeeds.
#[test]
fn daemon_survives_a_panicking_request() {
    let path = temp_path("panic", "bang");
    std::fs::write(&path, SMALL).unwrap();
    let (sock, server, handle) = start_server("panic");
    let mut client = Client::connect(&sock).expect("connect");

    // Warm the entry first so the panic has state to poison.
    let req = Request::for_path("schedule", path.to_str().unwrap());
    assert!(client.request(&req).unwrap().ok);
    assert!(client.request(&req).unwrap().cached);

    let mut boom = req.clone();
    boom.inject_handler_panic = true;
    let resp = client.request(&boom).unwrap();
    assert!(!resp.ok);
    assert!(resp.error.contains("panic"), "{}", resp.error);

    // Same connection still serves; the poisoned entry rebuilt cold.
    let after = client.request(&req).unwrap();
    assert!(after.ok, "{}", after.error);
    assert!(!after.cached, "panic poisoning evicts the warm entry");
    assert!(client.request(&req).unwrap().cached);

    let stats = server.store().stats();
    assert_eq!(stats.panics, 1);
    assert!(stats.evictions >= 1);
    shutdown(&sock, handle);
    std::fs::remove_file(&path).ok();
}

/// An executor-level injected panic is an *attributed error* (the
/// in-pipeline fault path), not a handler panic: the daemon answers
/// with the task name and its panic counter stays at zero.
#[test]
fn executor_faults_are_attributed_not_fatal() {
    let path = temp_path("exec-fault", "bang");
    std::fs::write(&path, lu3()).unwrap();
    let (sock, server, handle) = start_server("exec-fault");
    let mut client = Client::connect(&sock).expect("connect");

    let mut req = Request::for_path("run", path.to_str().unwrap());
    req.inputs.insert(
        "A".into(),
        banger_calc::Value::array(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]),
    );
    req.inputs
        .insert("b".into(), banger_calc::Value::array(vec![1.0, 2.0, 3.0]));
    let mut bad = req.clone();
    bad.inject_panic = Some("Factor.fan1".into());
    let resp = client.request(&bad).unwrap();
    assert!(!resp.ok);
    assert!(resp.error.contains("Factor.fan1"), "{}", resp.error);
    assert_eq!(server.store().stats().panics, 0, "attributed, not caught");

    let resp = client.request(&req).unwrap();
    assert!(resp.ok, "{}", resp.error);
    assert!(resp.output.contains("x = [1, 2, 3]"), "{}", resp.output);
    shutdown(&sock, handle);
    std::fs::remove_file(&path).ok();
}

/// Malformed frames get an error response without dropping the
/// connection or the daemon.
#[test]
fn protocol_garbage_is_answered_not_fatal() {
    use banger::serve::protocol::{read_frame, write_frame};
    use std::os::unix::net::UnixStream;

    let (sock, _server, handle) = start_server("garbage");
    let mut raw = UnixStream::connect(&sock).expect("connect");
    write_frame(&mut raw, b"this is not json").unwrap();
    let frame = read_frame(&mut raw).unwrap().expect("an answer");
    let resp = banger::serve::Response::from_json(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert!(!resp.ok);
    assert!(resp.error.contains("bad request"), "{}", resp.error);

    // The same connection still serves well-formed requests.
    write_frame(&mut raw, Request::new("ping").to_json().as_bytes()).unwrap();
    let frame = read_frame(&mut raw).unwrap().expect("an answer");
    let resp = banger::serve::Response::from_json(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert!(resp.ok);
    assert_eq!(resp.output, "pong\n");

    drop(raw);
    shutdown(&sock, handle);
}

/// `request_shutdown` from another thread (the signal-handler path
/// minus the signal) makes `serve` return and clean up the socket.
#[test]
fn programmatic_shutdown_cleans_up() {
    let (sock, server, handle) = start_server("clean");
    assert!(sock.exists());
    server.request_shutdown();
    handle.join().expect("server thread");
    assert!(!sock.exists(), "socket file removed on exit");
    assert!(server.shutdown_handle().load(Ordering::SeqCst));
}
