//! Property tests over hierarchical designs and project documents:
//! flattening conserves work, port wiring is complete, and `.bang`
//! documents round-trip.

use banger::document::{parse_project, print_project};
use banger::project::Project;
use banger_machine::{Machine, MachineParams, Topology};
use banger_taskgraph::{generators, HierGraph, NodeKind};
use proptest::prelude::*;

/// Total task weight across all hierarchy levels.
fn hier_weight(g: &HierGraph) -> f64 {
    g.nodes()
        .map(|(_, n)| match &n.kind {
            NodeKind::Task { weight, .. } => *weight,
            NodeKind::Compound { expansion, .. } => hier_weight(expansion),
            NodeKind::Storage { .. } => 0.0,
        })
        .sum()
}

/// A random two-level design: a top-level source storage, `groups`
/// compound nodes each holding a chain of `chain_len` tasks, and a sink
/// task collecting every group's output.
fn grouped_design(groups: usize, chain_len: usize, weight: f64) -> HierGraph {
    let mut top = HierGraph::new("grouped");
    let src = top.add_storage("input", 4.0);
    let sink = top.add_task("sink", weight);
    let out = top.add_storage("output", 1.0);
    top.add_flow(sink, out).unwrap();
    for gi in 0..groups {
        let mut inner = HierGraph::new(format!("G{gi}"));
        let mut prev = None;
        let mut first = None;
        for ci in 0..chain_len {
            let t = inner.add_task(format!("t{ci}"), weight * (ci + 1) as f64);
            if let Some(p) = prev {
                inner.add_arc(p, t, format!("c{ci}"), 2.0).unwrap();
            } else {
                first = Some(t);
            }
            prev = Some(t);
        }
        let c = top.add_compound(format!("G{gi}"), inner);
        top.bind_input(c, "input", first.unwrap()).unwrap();
        top.bind_output(c, format!("r{gi}"), prev.unwrap()).unwrap();
        top.add_arc(src, c, "input", 4.0).unwrap();
        top.add_arc(c, sink, format!("r{gi}"), 1.0).unwrap();
    }
    top
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flatten_conserves_tasks_and_weight(
        groups in 1usize..6,
        chain_len in 1usize..5,
        weight in 1.0f64..20.0,
    ) {
        let h = grouped_design(groups, chain_len, weight);
        let f = h.flatten().unwrap();
        prop_assert_eq!(f.graph.task_count(), h.leaf_task_count());
        prop_assert!((f.graph.total_weight() - hier_weight(&h)).abs() < 1e-9);
        prop_assert!(f.graph.is_dag());
        // Exactly one external input and one output.
        prop_assert_eq!(f.inputs.len(), 1);
        prop_assert_eq!(f.inputs[0].var.clone(), "input");
        prop_assert_eq!(f.outputs.len(), 1);
        prop_assert_eq!(f.outputs[0].var.clone(), "output");
        // The sink depends on every group's last task.
        let sink = f.graph.find_task("sink").unwrap();
        prop_assert_eq!(f.graph.in_degree(sink), groups);
        // Width equals the number of parallel groups.
        prop_assert_eq!(banger_taskgraph::analysis::width(&f.graph), groups.max(1));
    }

    #[test]
    fn documents_round_trip_generated_designs(
        groups in 1usize..5,
        chain_len in 1usize..4,
        dim in 0u32..3,
    ) {
        // The document stores one name for both project and design, so use
        // the design's name for the project.
        let h = grouped_design(groups, chain_len, 3.0);
        let name = h.name().to_string();
        let mut p = Project::new(name, h);
        p.set_machine(Machine::new(
            Topology::hypercube(dim),
            MachineParams {
                msg_startup: 0.5,
                ..MachineParams::default()
            },
        ));
        let text = print_project(&p);
        let p2 = parse_project(&text).unwrap();
        prop_assert_eq!(p.design(), p2.design());
        prop_assert_eq!(p.machine(), p2.machine());
        // Printing is a fixpoint.
        prop_assert_eq!(text, print_project(&p2));
    }

    #[test]
    fn lu_design_flatten_invariants(n in 2usize..9) {
        let h = generators::lu_hierarchical(n);
        let f = h.flatten().unwrap();
        prop_assert_eq!(f.graph.task_count(), h.leaf_task_count());
        prop_assert!((f.graph.total_weight() - hier_weight(&h)).abs() < 1e-9);
        prop_assert!(f.graph.is_dag());
        // The factor stage width is n-1 (first stage updates in parallel).
        prop_assert_eq!(
            banger_taskgraph::analysis::width(&f.graph),
            (n - 1).max(1)
        );
    }
}

#[test]
fn dot_outputs_are_parse_free() {
    // DOT rendering should never contain unescaped quotes that would
    // break Graphviz, for any of our generated designs.
    for h in [generators::lu_hierarchical(4), grouped_design(3, 2, 2.0)] {
        let dot = banger_taskgraph::dot::hiergraph_to_dot(&h);
        // Equal numbers of braces, brackets and quotes.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        assert_eq!(dot.matches('[').count(), dot.matches(']').count());
        assert_eq!(dot.matches('"').count() % 2, 0);
    }
}
